//! **dTSS** — dynamic skylines for partially ordered domains (§V).
//!
//! A dynamic skyline query *explicitly* specifies the partial order of every
//! PO attribute, so dominance relationships change per query. Rebuilding the
//! transformed index per query (as sTSS or the SDC baselines would need to)
//! costs passes over the whole data set; dTSS avoids that entirely:
//!
//! * **Build once:** tuples are partitioned into *groups* by their PO value
//!   combination; each group gets its own R-tree over the TO attributes.
//!   Groups and trees are *independent of any partial order*.
//! * **Per query:** the supplied DAGs are topologically sorted and labeled
//!   (cheap — the domains are small). Groups are visited in ascending sum of
//!   their values' topological ordinals, which guarantees precedence across
//!   groups: a dominating group's values are all preferred-or-equal, hence
//!   have ordinal-sum strictly below (distinct keys). Inside a group, BBS
//!   over the TO tree gives precedence as usual, so every surviving point is
//!   emitted immediately.
//! * **Group skipping:** before touching a group's tree, its root MBB corner
//!   is checked against the global skyline; a dominated corner dismisses the
//!   whole group without reading a single page (the Fig. 5 `Gc` moment).
//! * **Optimizations (§V-B):** precomputed per-group *local skylines* (order
//!   independent!) shrink each group to the only points that can possibly
//!   qualify; a query-digest cache reuses full results of repeated orders.

use crate::cursor::{SkylineCursor, SkylineEngine};
use crate::dominance::t_dominates;
use crate::progressive::ProgressSample;
use crate::store::RecordId;
use crate::stss::SkylinePoint;
use crate::{CoreError, Metrics, PoDomain, Table, VirtualPointIndex};
use poset::{Dag, Fnv64, ValueId};
use rtree::{BestFirst, PageConfig, Popped, RTree};
use skyline::PointBlock;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::time::Instant;

/// A dynamic skyline query: one partial order per PO attribute, over the
/// same value ids the data was loaded with.
#[derive(Debug, Clone)]
pub struct PoQuery {
    dags: Vec<Dag>,
}

impl PoQuery {
    /// Wraps the per-attribute partial orders.
    pub fn new(dags: Vec<Dag>) -> Self {
        PoQuery { dags }
    }

    /// The partial orders.
    pub fn dags(&self) -> &[Dag] {
        &self.dags
    }

    /// A canonical digest of the query — the per-attribute
    /// [`Dag::fingerprint`]s combined in order with a toolchain-stable
    /// FNV-1a — used as the result-cache key. Like any 64-bit hash it can
    /// collide; the cache verifies every hit against the stored query (see
    /// [`DtssConfig::cache`]).
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        for dag in &self.dags {
            dag.fingerprint().hash(&mut h);
        }
        h.finish()
    }

    /// Structural equality with another query: same attribute count and
    /// [`Dag::same_structure`] per attribute — the collision guard behind
    /// every digest-cache hit.
    pub fn same_structure(&self, other: &PoQuery) -> bool {
        self.dags.len() == other.dags.len()
            && self
                .dags
                .iter()
                .zip(other.dags.iter())
                .all(|(a, b)| a.same_structure(b))
    }
}

/// Tuning knobs for [`Dtss`]. Defaults reproduce the paper's benchmark
/// configuration (§VI-C: "no buffers, global main memory R-tree,
/// pre-processing or caching mechanisms are used").
#[derive(Debug, Clone, Copy, Default)]
pub struct DtssConfig {
    /// Page model for node capacities and local-skyline page charging.
    pub page: PageConfig,
    /// Explicit node capacity override.
    pub node_capacity: Option<usize>,
    /// Use the global main-memory virtual-point R-tree (§V-A).
    pub fast_check: bool,
    /// Precompute per-group local skylines at build time (§V-B).
    pub precompute_local: bool,
    /// Cache query results by digest (§V-B).
    pub cache: bool,
    /// Pre-filter the global skyline once per group to the entries whose PO
    /// values can dominate the group's key, turning per-point checks into
    /// TO-only comparisons. Exact; off by default (paper-plain checks).
    pub filter_dominators: bool,
    /// Parallel stratum-evaluation mode: `0` (default) keeps the classic
    /// serial group walk; `>= 1` evaluates each *rank stratum* — the
    /// maximal run of groups sharing one ordinal-sum rank — concurrently
    /// with up to that many worker threads.
    ///
    /// Groups of equal rank are mutually incomparable (a dominating
    /// group's key has a strictly smaller ordinal sum), so their dismissal
    /// checks and, with [`precompute_local`](Self::precompute_local), their
    /// local-skyline candidate screening run against the global skyline
    /// *frozen at stratum start*. Outcomes and emission order equal the
    /// serial walk's for every worker count; the examined-pair counts
    /// depend only on the stratum partition, never on `eval_threads`.
    /// Groups that need a live tree traversal (no local skyline, or a
    /// fully dynamic reference point) are walked serially inside the
    /// stratum, unchanged. Ignored when [`fast_check`](Self::fast_check)
    /// is on (the virtual-point index mutates per confirmation).
    pub eval_threads: usize,
}

/// One PO-value group: key, members, TO R-tree, optional local skyline.
#[derive(Debug)]
struct Group {
    key: Vec<u32>,
    tree: RTree,
    /// Local skyline record ids sorted by ascending TO coordinate sum, if
    /// precomputed.
    local_skyline: Option<Vec<u32>>,
}

impl Group {
    /// The root MBB corner the dismissal check runs on, folded around
    /// `reference` for fully dynamic queries.
    fn root_corner(&self, reference: Option<&[u32]>) -> Vec<u32> {
        let root = self.tree.root().expect("groups are non-empty");
        match reference {
            None => self.tree.mbb(root).lo().to_vec(),
            Some(r) => self.tree.mbb(root).folded_corner(r),
        }
    }
}

/// The dTSS operator: built once over a table, queried many times with
/// different partial orders.
#[derive(Debug)]
pub struct Dtss {
    table: Table,
    domain_sizes: Vec<u32>,
    groups: Vec<Group>,
    cfg: DtssConfig,
    cache: RefCell<HashMap<u64, CachedResult>>,
}

/// One memoized query result. The digest key is a 64-bit hash, so the
/// entry keeps the query (and reference point) it was computed for and
/// every hit is verified structurally — a collision degrades to a miss
/// instead of replaying the wrong skyline.
#[derive(Debug, Clone)]
struct CachedResult {
    query: PoQuery,
    reference: Option<Vec<u32>>,
    records: Vec<u32>,
}

impl CachedResult {
    fn matches(&self, q: &PoQuery, reference: Option<&[u32]>) -> bool {
        self.query.same_structure(q) && self.reference.as_deref() == reference
    }
}

/// Result of one [`Dtss::query`].
#[derive(Debug, Clone)]
pub struct DtssRun {
    /// Skyline points in emission order.
    pub skyline: Vec<SkylinePoint>,
    /// Execution metrics for this query.
    pub metrics: Metrics,
    /// Groups dismissed by the root-corner check.
    pub groups_skipped: u64,
    /// Total number of groups.
    pub groups_total: u64,
    /// True iff served from the query cache.
    pub from_cache: bool,
}

impl DtssRun {
    /// Record indices of the skyline, in emission order.
    pub fn skyline_records(&self) -> Vec<u32> {
        self.skyline.iter().map(|p| p.record).collect()
    }
}

impl Dtss {
    /// Partitions the table into groups and bulk-loads the per-group trees.
    /// `domain_sizes[d]` is the cardinality of PO domain `d` (queries must
    /// supply DAGs of exactly these sizes).
    pub fn build(table: Table, domain_sizes: Vec<u32>, cfg: DtssConfig) -> Result<Self, CoreError> {
        if table.to_dims() == 0 {
            return Err(CoreError::NoDimensions);
        }
        table.check_domains(&domain_sizes)?;
        let mut by_key: HashMap<Vec<u32>, Vec<u32>> = HashMap::new();
        for i in 0..table.len() {
            by_key
                .entry(table.po_row(i).to_vec())
                .or_default()
                .push(i as u32);
        }
        let cap = cfg
            .node_capacity
            .unwrap_or_else(|| cfg.page.capacity(table.to_dims()));
        // lint:allow(hash-iter): keys are sorted on the next line, so the group layout never sees the hasher's order
        let mut group_keys: Vec<Vec<u32>> = by_key.keys().cloned().collect();
        group_keys.sort_unstable(); // deterministic group layout
        let groups = group_keys
            .into_iter()
            .map(|key| {
                let records = by_key.remove(&key).unwrap();
                // Columnar group load: gather the members' TO rows into one
                // flat matrix, never materializing per-point rows.
                let mut coords = Vec::with_capacity(records.len() * table.to_dims());
                for &r in &records {
                    coords.extend_from_slice(table.to_row(r as usize));
                }
                let tree = RTree::bulk_load_flat(table.to_dims(), cap, &coords, &records);
                let local_skyline = cfg.precompute_local.then(|| {
                    let (mut sky, _) = skyline::bbs(&tree);
                    sky.sort_by_key(|&r| (skyline::monotone_sum(table.to_row(r as usize)), r));
                    tree.reset_io();
                    sky
                });
                tree.reset_io();
                Group {
                    key,
                    tree,
                    local_skyline,
                }
            })
            .collect();
        Ok(Dtss {
            table,
            domain_sizes,
            groups,
            cfg,
            cache: RefCell::new(HashMap::new()),
        })
    }

    /// The input table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Number of PO-value groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Cardinality of each PO domain (what query DAGs must match).
    pub fn domain_sizes(&self) -> &[u32] {
        &self.domain_sizes
    }

    /// Evaluates a dynamic skyline query.
    pub fn query(&self, q: &PoQuery) -> Result<DtssRun, CoreError> {
        self.query_inner(q, None, None)
    }

    /// Opens a pull-based cursor over a dynamic skyline query: groups are
    /// visited, dismissed and traversed lazily, one confirmation per
    /// [`next`](SkylineCursor::next) call, so a top-k consumer never touches
    /// groups ranked after its prefix.
    ///
    /// With [`DtssConfig::cache`] on, a digest hit replays the memoized
    /// result; only fully materialized [`Dtss::query`] runs populate that
    /// cache. The group trees' IO counters are shared, so open one cursor at
    /// a time if per-run IO metrics matter.
    pub fn query_cursor(&self, q: &PoQuery) -> Result<DtssCursor<'_>, CoreError> {
        self.cursor_inner(q, None, None)
    }

    /// Budgeted query: drives [`query_cursor`](Self::query_cursor) under
    /// a pair-check allowance — the full dynamic skyline when it fits,
    /// otherwise a *sound confirmed prefix* of it (see
    /// [`BudgetedCursor`](crate::BudgetedCursor)).
    pub fn query_budgeted(
        &self,
        q: &PoQuery,
        budget: crate::Budget,
    ) -> Result<crate::BudgetOutcome, CoreError> {
        Ok(crate::BudgetedCursor::run(self.query_cursor(q)?, budget))
    }

    /// Cursor variant of [`Dtss::query_fully_dynamic`].
    pub fn query_cursor_fully_dynamic(
        &self,
        q: &PoQuery,
        reference: &[u32],
    ) -> Result<DtssCursor<'_>, CoreError> {
        assert_eq!(
            reference.len(),
            self.table.to_dims(),
            "reference must name one ideal value per TO attribute"
        );
        self.cursor_inner(q, Some(reference), None)
    }

    /// Binds a query to this operator as a reusable [`SkylineEngine`]
    /// (validation happens here, so [`SkylineEngine::open`] cannot fail).
    pub fn engine(&self, query: PoQuery) -> Result<DtssQueryEngine<'_>, CoreError> {
        self.validate(&query)?;
        Ok(DtssQueryEngine { dtss: self, query })
    }

    /// Evaluates a **fully dynamic** skyline query (§V-B): besides the
    /// partial orders, the query names the *ideal value* of every TO
    /// attribute; TO dominance is taken on the folded coordinates
    /// `|x − reference|`. The precomputed local skylines are invalid under
    /// folding (the paper's observation), so this path always scans the
    /// group trees — best-first around the reference point.
    ///
    /// Reported skyline points carry their **original** TO coordinates.
    pub fn query_fully_dynamic(
        &self,
        q: &PoQuery,
        reference: &[u32],
    ) -> Result<DtssRun, CoreError> {
        assert_eq!(
            reference.len(),
            self.table.to_dims(),
            "reference must name one ideal value per TO attribute"
        );
        self.query_inner(q, Some(reference), None)
    }

    /// Validates a query's shape against the data-resident structures.
    fn validate(&self, q: &PoQuery) -> Result<(), CoreError> {
        if q.dags.len() != self.domain_sizes.len() {
            return Err(CoreError::DomainCountMismatch {
                dags: q.dags.len(),
                po_dims: self.domain_sizes.len(),
            });
        }
        for (d, dag) in q.dags.iter().enumerate() {
            if dag.len() != self.domain_sizes[d] as usize {
                return Err(CoreError::QueryDomainMismatch {
                    dim: d,
                    expected: self.domain_sizes[d] as usize,
                    got: dag.len(),
                });
            }
        }
        Ok(())
    }

    /// Result-cache key: the query digest, salted with the reference point
    /// for fully dynamic queries.
    fn full_digest(q: &PoQuery, reference: Option<&[u32]>) -> u64 {
        let mut digest = q.digest();
        if let Some(r) = reference {
            let mut h = Fnv64::new();
            digest.hash(&mut h);
            r.hash(&mut h);
            digest = h.finish();
        }
        digest
    }

    /// Labels every query DAG from scratch (no session cache).
    fn prepare_fresh(&self, q: &PoQuery) -> PreparedDomains {
        PreparedDomains {
            domains: q.dags.iter().cloned().map(PoDomain::new).collect(),
            hits: 0,
            misses: q.dags.len() as u64,
        }
    }

    /// Shared query entry point. `prepare` runs lazily — a result-digest
    /// cache hit skips the labeling work entirely — and is `None` for plain
    /// (sessionless) queries, which label from scratch.
    pub(crate) fn query_inner(
        &self,
        q: &PoQuery,
        reference: Option<&[u32]>,
        prepare: Option<&mut dyn FnMut() -> PreparedDomains>,
    ) -> Result<DtssRun, CoreError> {
        self.validate(q)?;
        let digest = Self::full_digest(q, reference);
        if self.cfg.cache {
            if let Some(entry) = self.cache.borrow().get(&digest) {
                // Digest collisions (different query, same hash) fall
                // through to a fresh evaluation.
                if entry.matches(q, reference) {
                    let skyline = entry
                        .records
                        .iter()
                        .map(|&r| SkylinePoint {
                            record: r,
                            to: self.table.to_row(r as usize).to_vec(),
                            po: self.table.po_row(r as usize).to_vec(),
                        })
                        .collect::<Vec<_>>();
                    return Ok(DtssRun {
                        metrics: Metrics {
                            results: skyline.len() as u64,
                            ..Default::default()
                        },
                        skyline,
                        groups_skipped: 0,
                        groups_total: self.groups.len() as u64,
                        from_cache: true,
                    });
                }
            }
        }
        let prepared = match prepare {
            Some(f) => f(),
            None => self.prepare_fresh(q),
        };
        let mut cursor = DtssCursor::new_live(self, prepared, reference.map(<[u32]>::to_vec));
        let mut skyline = Vec::new();
        while let Some(p) = cursor.next() {
            skyline.push(p);
        }
        let run = DtssRun {
            metrics: cursor.metrics(),
            groups_skipped: cursor.groups_skipped(),
            groups_total: self.groups.len() as u64,
            from_cache: false,
            skyline,
        };
        if self.cfg.cache {
            // On a digest collision the slot's first owner is kept: the
            // colliding query simply stays uncached.
            self.cache
                .borrow_mut()
                .entry(digest)
                .or_insert_with(|| CachedResult {
                    query: q.clone(),
                    reference: reference.map(<[u32]>::to_vec),
                    records: run.skyline.iter().map(|p| p.record).collect(),
                });
        }
        Ok(run)
    }

    pub(crate) fn cursor_inner(
        &self,
        q: &PoQuery,
        reference: Option<&[u32]>,
        prepare: Option<&mut dyn FnMut() -> PreparedDomains>,
    ) -> Result<DtssCursor<'_>, CoreError> {
        self.validate(q)?;
        let digest = Self::full_digest(q, reference);
        if self.cfg.cache {
            if let Some(entry) = self.cache.borrow().get(&digest) {
                if entry.matches(q, reference) {
                    return Ok(DtssCursor::new_replay(self, entry.records.clone()));
                }
            }
        }
        let prepared = match prepare {
            Some(f) => f(),
            None => self.prepare_fresh(q),
        };
        Ok(DtssCursor::new_live(
            self,
            prepared,
            reference.map(<[u32]>::to_vec),
        ))
    }

    /// Emits a confirmed skyline point, updating all side structures.
    #[allow(clippy::too_many_arguments)]
    fn emit(
        &self,
        record: RecordId,
        to: &[u32],
        key: &[u32],
        domains: &[PoDomain],
        sky: &mut SkyList,
        vpi: Option<&mut VirtualPointIndex>,
        filtered: Option<&mut Vec<(u32, bool)>>,
        m: &mut Metrics,
    ) {
        if let Some(vpi) = vpi {
            let sets: Vec<&poset::IntervalSet> = key
                .iter()
                .enumerate()
                .map(|(d, &v)| domains[d].intervals(v))
                .collect();
            vpi.insert(to, &sets, record);
        }
        if let Some(filtered) = filtered {
            // Same-key entry: can dominate later points of this group via TO.
            filtered.push((sky.len() as u32, false));
        }
        sky.push(record, to, key);
        m.results += 1;
    }

    /// Exact point check against the global skyline.
    #[allow(clippy::too_many_arguments)]
    fn point_dominated(
        &self,
        to: &[u32],
        key: &[u32],
        posts: &[u32],
        domains: &[PoDomain],
        sky: &SkyList,
        vpi: Option<&VirtualPointIndex>,
        filtered: Option<&[(u32, bool)]>,
        m: &mut Metrics,
    ) -> bool {
        if let Some(vpi) = vpi {
            if sky.contains_key(to, key, &self.table) {
                return false; // exact duplicate of a skyline point
            }
            let (hit, queries) = vpi.covers_value(to, posts);
            m.dominance_checks += queries;
            return hit;
        }
        if let Some(filtered) = filtered {
            // Same-key group: PO strictness was decided once per group, the
            // remaining comparison is the TO-only strictness kernel.
            let (hit, examined) = sky.folded.dominated_with_strictness(filtered, to);
            m.batch(examined);
            return hit;
        }
        let (hit, examined) = sky.t_dominated(domains, &self.table, to, key);
        m.batch(examined);
        hit
    }

    /// Sound subtree check: the group's PO values are fixed, so only the TO
    /// corner varies. A global entry `s` prunes the subtree iff `s.to` is at
    /// most the corner on every dimension and either `s` is PO-strictly
    /// better or `s.to` differs from the corner (the corner-equality
    /// argument of `skyline::bbs`, extended with PO strictness).
    #[allow(clippy::too_many_arguments)]
    fn node_dominated(
        &self,
        corner: &[u32],
        key: &[u32],
        posts: &[u32],
        domains: &[PoDomain],
        sky: &SkyList,
        vpi: Option<&VirtualPointIndex>,
        filtered: Option<&[(u32, bool)]>,
        m: &mut Metrics,
    ) -> bool {
        if let Some(vpi) = vpi {
            let (hit, queries) = vpi.covers_value(corner, posts);
            m.dominance_checks += queries;
            return hit;
        }
        if let Some(filtered) = filtered {
            let (hit, examined) = sky.folded.dominated_with_strictness(filtered, corner);
            m.batch(examined);
            return hit;
        }
        let (hit, examined) = sky.node_dominated(domains, &self.table, corner, key);
        m.batch(examined);
        hit
    }
}

/// The cursor's working skyline, columnar: record ids, the *folded* TO
/// coordinates (the dominance space), and a row-hash multimap for exact
/// duplicate detection — PO values are fetched from the store by id, and
/// no per-point rows or owned key tuples exist anywhere.
struct SkyList {
    ids: Vec<RecordId>,
    /// Folded TO coordinates, parallel to `ids` (stride = `|TO|`).
    folded: PointBlock,
    /// Row hash of `(folded TO, PO key)` -> positions in `ids`.
    keys: HashMap<u64, Vec<u32>>,
}

impl SkyList {
    fn new(to_dims: usize, kernel: skyline::Kernel) -> Self {
        SkyList {
            ids: Vec::new(),
            folded: PointBlock::new(to_dims.max(1)).with_kernel(kernel),
            keys: HashMap::new(),
        }
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn push(&mut self, record: RecordId, folded_to: &[u32], po: &[u32]) {
        self.keys
            .entry(crate::store::row_hash(folded_to, po))
            .or_default()
            .push(self.ids.len() as u32);
        self.ids.push(record);
        self.folded.push(folded_to);
    }

    /// Is `(folded_to, po)` the exact key of some skyline entry? Hash probe
    /// plus slice comparison against the blocks — no allocation.
    fn contains_key(&self, folded_to: &[u32], po: &[u32], table: &Table) -> bool {
        self.keys
            .get(&crate::store::row_hash(folded_to, po))
            .is_some_and(|positions| {
                positions.iter().any(|&p| {
                    self.folded.point(p as usize) == folded_to
                        && table.po(self.ids[p as usize]) == po
                })
            })
    }

    /// Batched exact t-dominance of the whole list over one candidate
    /// (folded TO coordinates, PO values from the store).
    fn t_dominated(
        &self,
        domains: &[PoDomain],
        table: &Table,
        cand_to: &[u32],
        cand_po: &[u32],
    ) -> (bool, u64) {
        let mut examined = 0u64;
        for (pos, &r) in self.ids.iter().enumerate() {
            examined += 1;
            if t_dominates(
                domains,
                self.folded.point(pos),
                table.po(r),
                cand_to,
                cand_po,
            ) {
                return (true, examined);
            }
        }
        (false, examined)
    }

    /// Shared corner kernel: some entry has `s.to <= corner` everywhere,
    /// its PO values at-least-as-good on the group key, and — when
    /// `exclude_ties` — is not an exact tie on both parts.
    fn corner_dominated(
        &self,
        domains: &[PoDomain],
        table: &Table,
        corner: &[u32],
        key: &[u32],
        exclude_ties: bool,
    ) -> (bool, u64) {
        let mut examined = 0u64;
        for (pos, &r) in self.ids.iter().enumerate() {
            examined += 1;
            let s_to = self.folded.point(pos);
            let mut le = true;
            for (&a, &b) in s_to.iter().zip(corner.iter()) {
                le &= a <= b;
            }
            if !le {
                continue;
            }
            let s_po = table.po(r);
            if key
                .iter()
                .enumerate()
                .all(|(d, &kv)| domains[d].pref_or_equal(s_po[d], kv))
                && (!exclude_ties || s_po != key || s_to != corner)
            {
                return (true, examined);
            }
        }
        (false, examined)
    }

    /// Batched subtree check (see [`Dtss::node_dominated`]): the corner
    /// kernel with the tie exclusion that keeps exact duplicates alive.
    fn node_dominated(
        &self,
        domains: &[PoDomain],
        table: &Table,
        corner: &[u32],
        key: &[u32],
    ) -> (bool, u64) {
        self.corner_dominated(domains, table, corner, key, true)
    }

    /// Batched group-dismissal check: like [`Self::node_dominated`] but
    /// without the tie exclusion (the paper's root-corner test).
    fn group_dismissed(
        &self,
        domains: &[PoDomain],
        table: &Table,
        corner: &[u32],
        key: &[u32],
    ) -> (bool, u64) {
        self.corner_dominated(domains, table, corner, key, false)
    }

    /// Per-group dominator prefilter ([`DtssConfig::filter_dominators`]):
    /// positions of skyline entries whose PO values can dominate the group
    /// `key`, paired with their PO strictness — the input of the
    /// strictness-precomputed TO kernel. One dominance check per entry.
    /// Shared by the serial group setup and the parallel stratum workers,
    /// so the two modes can never screen differently.
    fn filter_dominators(
        &self,
        domains: &[PoDomain],
        table: &Table,
        key: &[u32],
        m: &mut Metrics,
    ) -> Vec<(u32, bool)> {
        self.ids
            .iter()
            .enumerate()
            .filter_map(|(pos, &r)| {
                m.dominance_checks += 1;
                let s_po = table.po(r);
                let ok = key
                    .iter()
                    .enumerate()
                    .all(|(d, &kv)| domains[d].pref_or_equal(s_po[d], kv));
                ok.then(|| (pos as u32, s_po != key))
            })
            .collect()
    }
}

/// A precomputed stratum verdict for one group (parallel mode): what the
/// frozen-skyline evaluation decided before the group is entered.
enum GroupPlan {
    /// Root corner dominated — dismiss without touching the tree.
    Dismissed,
    /// Local-skyline group: the candidates that survived the frozen
    /// screen, ready to emit.
    Local(VecDeque<u32>),
    /// Not dismissed, but needs its live tree walk (no local skyline, or
    /// a folded reference point).
    Live,
}

/// Per-query labelings handed to the executor, with the session-cache
/// accounting that produced them.
pub(crate) struct PreparedDomains {
    pub(crate) domains: Vec<PoDomain>,
    pub(crate) hits: u64,
    pub(crate) misses: u64,
}

/// A [`Dtss`] operator bound to one [`PoQuery`] — the [`SkylineEngine`]
/// view of a dynamic skyline query. Built by [`Dtss::engine`], which
/// validates the query so [`open`](SkylineEngine::open) cannot fail.
pub struct DtssQueryEngine<'a> {
    dtss: &'a Dtss,
    query: PoQuery,
}

impl DtssQueryEngine<'_> {
    /// The bound query.
    pub fn query(&self) -> &PoQuery {
        &self.query
    }
}

impl SkylineEngine for DtssQueryEngine<'_> {
    fn name(&self) -> &str {
        "dTSS"
    }

    fn open(&self) -> Box<dyn SkylineCursor + '_> {
        Box::new(
            self.dtss
                .query_cursor(&self.query)
                .expect("query validated at engine construction"),
        )
    }
}

/// Where the cursor currently stands in the group-at-a-time walk.
enum DtssPhase<'a> {
    /// Pick (and possibly dismiss) the next group in ordinal-rank order.
    NextGroup,
    /// Iterating a precomputed local skyline (§V-B).
    Local {
        gi: usize,
        posts: Vec<u32>,
        filtered: Option<Vec<(u32, bool)>>,
        ix: usize,
    },
    /// Emitting the frozen-screened survivors of a local-skyline group
    /// (parallel stratum mode — the screening already happened in
    /// [`DtssCursor::plan_stratum`]).
    LocalPre {
        gi: usize,
        survivors: VecDeque<u32>,
    },
    /// Best-first traversal of a group's TO R-tree.
    Tree {
        gi: usize,
        posts: Vec<u32>,
        filtered: Option<Vec<(u32, bool)>>,
        bf: BestFirst<'a>,
    },
    /// Draining the duplicate-completion queue.
    Extras(VecDeque<SkylinePoint>),
    /// Replaying a digest-cache hit.
    Replay(VecDeque<SkylinePoint>),
    Done,
}

/// Pull-based dTSS executor: the §V-A group walk as an explicit-state
/// iterator. Groups are ranked, dismissed and traversed lazily — a consumer
/// that stops after `k` results never reads the trees of later groups.
///
/// Yielded points always carry their **original** TO coordinates, also for
/// fully dynamic (folded) queries.
pub struct DtssCursor<'a> {
    dtss: &'a Dtss,
    /// Per-query labelings (owned: possibly cloned out of a session cache).
    domains: Vec<PoDomain>,
    reference: Option<Vec<u32>>,
    /// Group visit order by ascending ordinal-sum rank.
    order: Vec<usize>,
    /// Ordinal-sum rank per group index (stratum boundaries of the
    /// parallel mode).
    ranks: Vec<u64>,
    /// Precomputed verdicts of the current rank stratum (parallel mode),
    /// consumed as each group is entered.
    plans: HashMap<usize, GroupPlan>,
    order_ix: usize,
    start: Instant,
    m: Metrics,
    /// Working skyline in *folded* coordinates (the dominance space):
    /// record ids plus a columnar folded-TO block.
    sky: SkyList,
    vpi: Option<VirtualPointIndex>,
    /// Reused buffer for folded candidate coordinates (fully dynamic
    /// queries fold every popped point; plain queries never touch this).
    fold_scratch: Vec<u32>,
    groups_skipped: u64,
    phase: DtssPhase<'a>,
    last_sample: ProgressSample,
    from_cache: bool,
    finished: bool,
}

impl<'a> DtssCursor<'a> {
    fn new_live(dtss: &'a Dtss, prepared: PreparedDomains, reference: Option<Vec<u32>>) -> Self {
        // lint:allow(time-source): Metrics.cpu timing site — cursor wall clock
        let start = Instant::now();
        let to_dims = dtss.table.to_dims();
        let domains = prepared.domains;
        let mut m = Metrics {
            label_cache_hits: prepared.hits,
            label_cache_misses: prepared.misses,
            ..Default::default()
        };
        // Reading the group directory (each group's key + root MBB) costs
        // sequential page IOs — the paper's §VI-C remark that many group
        // roots should be "stored in contiguous disk pages and retrieved
        // multiple at a time". One directory record ≈ key + 2·|TO| corner
        // coordinates.
        m.io_reads += dtss
            .cfg
            .page
            .data_pages(dtss.groups.len(), dtss.domain_sizes.len() + 2 * to_dims);
        // Visit groups by ascending sum of ordinals: precedence across
        // groups. The ranks double as the stratum boundaries of the
        // parallel evaluation mode (equal rank ⇒ mutually incomparable).
        let ranks: Vec<u64> = dtss
            .groups
            .iter()
            .map(|g| {
                g.key
                    .iter()
                    .enumerate()
                    .map(|(d, &v)| domains[d].ordinal(v) as u64)
                    .sum()
            })
            .collect();
        let mut order: Vec<usize> = (0..dtss.groups.len()).collect();
        order.sort_by_key(|&gi| (ranks[gi], gi));
        let vpi = dtss.cfg.fast_check.then(|| {
            VirtualPointIndex::new(
                to_dims,
                &domains,
                dtss.cfg.page.capacity(to_dims + 2 * domains.len()),
            )
        });
        DtssCursor {
            dtss,
            domains,
            reference,
            order,
            ranks,
            plans: HashMap::new(),
            order_ix: 0,
            start,
            m,
            sky: SkyList::new(to_dims, dtss.table.kernel()),
            vpi,
            fold_scratch: Vec::new(),
            groups_skipped: 0,
            phase: DtssPhase::NextGroup,
            last_sample: ProgressSample::default(),
            from_cache: false,
            finished: false,
        }
    }

    fn new_replay(dtss: &'a Dtss, records: Vec<u32>) -> Self {
        let queue = records
            .into_iter()
            .map(|r| SkylinePoint {
                record: r,
                to: dtss.table.to_row(r as usize).to_vec(),
                po: dtss.table.po_row(r as usize).to_vec(),
            })
            .collect();
        DtssCursor {
            dtss,
            domains: Vec::new(),
            reference: None,
            order: Vec::new(),
            ranks: Vec::new(),
            plans: HashMap::new(),
            order_ix: 0,
            // lint:allow(time-source): Metrics.cpu timing site — replay-cursor wall clock
            start: Instant::now(),
            m: Metrics::default(),
            sky: SkyList::new(dtss.table.to_dims(), dtss.table.kernel()),
            vpi: None,
            fold_scratch: Vec::new(),
            groups_skipped: 0,
            phase: DtssPhase::Replay(queue),
            last_sample: ProgressSample::default(),
            from_cache: true,
            finished: true, // replay: metrics are final from the start
        }
    }

    /// Groups dismissed by the root-corner check so far.
    pub fn groups_skipped(&self) -> u64 {
        self.groups_skipped
    }

    /// Total number of PO-value groups in the operator.
    pub fn groups_total(&self) -> u64 {
        self.dtss.groups.len() as u64
    }

    /// True iff this cursor replays a digest-cache hit.
    pub fn from_cache(&self) -> bool {
        self.from_cache
    }

    /// Folded view of TO coordinates: `|x − reference|` (identity when no
    /// reference is given). All dominance checks and the working skyline
    /// list operate on folded coordinates.
    fn fold(&self, to: &[u32]) -> Vec<u32> {
        match &self.reference {
            None => to.to_vec(),
            Some(r) => to
                .iter()
                .zip(r.iter())
                .map(|(&a, &b)| a.abs_diff(b))
                .collect(),
        }
    }

    /// The owned point handed to the caller: original TO coordinates.
    fn yielded(&self, record: u32) -> SkylinePoint {
        SkylinePoint {
            record,
            to: self.dtss.table.to_row(record as usize).to_vec(),
            po: self.dtss.table.po_row(record as usize).to_vec(),
        }
    }

    /// Records the confirmation snapshot; `extra_io` charges the in-flight
    /// group's tree reads, which move into `m.io_reads` at group end.
    fn take_sample(&mut self, extra_io: u64) {
        self.last_sample = ProgressSample {
            results: self.m.results,
            elapsed_cpu: self.start.elapsed(),
            io_reads: self.m.io_reads + extra_io,
            dominance_checks: self.m.dominance_checks,
        };
    }

    /// True iff this cursor precomputes rank-stratum verdicts in parallel
    /// (see [`DtssConfig::eval_threads`]); the fast-check configuration
    /// always stays serial.
    fn parallel(&self) -> bool {
        self.dtss.cfg.eval_threads >= 1 && self.vpi.is_none()
    }

    /// Evaluates the whole rank stratum starting at `start_ix` of the
    /// visit order against the skyline *frozen now*: dismissal verdicts
    /// for every group, plus the candidate screening of local-skyline
    /// groups, fanned out on up to `eval_threads` workers. Sound because
    /// same-rank groups are mutually incomparable (a dominating key has a
    /// strictly smaller ordinal sum), so nothing emitted inside the
    /// stratum can change these verdicts; deterministic because every
    /// check runs against the frozen state and the results are merged in
    /// group order — the worker count never shows in the metrics.
    fn plan_stratum(&mut self, start_ix: usize) {
        let dtss = self.dtss;
        let threads = dtss.cfg.eval_threads.max(1);
        let rank0 = self.ranks[self.order[start_ix]];
        let end_ix = self.order[start_ix..]
            .iter()
            .position(|&gi| self.ranks[gi] != rank0)
            .map_or(self.order.len(), |off| start_ix + off);

        struct Job<'b> {
            gi: usize,
            key: &'b [u32],
            corner: Vec<u32>,
            local: Option<&'b [u32]>,
        }
        let jobs: Vec<Job<'_>> = self.order[start_ix..end_ix]
            .iter()
            .map(|&gi| {
                let group = &dtss.groups[gi];
                // Local skylines are invalid under folding (§V-B).
                let local = match &self.reference {
                    None => group.local_skyline.as_deref(),
                    Some(_) => None,
                };
                Job {
                    gi,
                    key: &group.key,
                    corner: group.root_corner(self.reference.as_deref()),
                    local,
                }
            })
            .collect();

        let sky = &self.sky;
        let table = &dtss.table;
        let domains: &[PoDomain] = &self.domains;
        let filter = dtss.cfg.filter_dominators;
        let results = crate::parallel::map_slice(threads, &jobs, |job| {
            let mut m = Metrics::default();
            let (hit, examined) = sky.group_dismissed(domains, table, &job.corner, job.key);
            m.batch(examined);
            if hit {
                return (job.gi, GroupPlan::Dismissed, m);
            }
            let Some(local) = job.local else {
                return (job.gi, GroupPlan::Live, m);
            };
            // Frozen screen of the local candidates, mirroring the serial
            // `point_dominated` paths (plain scan, or the per-group
            // dominator prefilter feeding the TO-strictness kernel).
            let survivors: VecDeque<u32> = if filter {
                let filtered = sky.filter_dominators(domains, table, job.key, &mut m);
                local
                    .iter()
                    .copied()
                    .filter(|&r| {
                        let (hit, examined) =
                            sky.folded.dominated_with_strictness(&filtered, table.to(r));
                        m.batch(examined);
                        !hit
                    })
                    .collect()
            } else {
                local
                    .iter()
                    .copied()
                    .filter(|&r| {
                        let (hit, examined) = sky.t_dominated(domains, table, table.to(r), job.key);
                        m.batch(examined);
                        !hit
                    })
                    .collect()
            };
            (job.gi, GroupPlan::Local(survivors), m)
        });
        for (gi, plan, m) in results {
            self.m = self.m.merge(&m);
            self.plans.insert(gi, plan);
        }
    }

    /// Sets up the next group: dismissal check, prefilter, and the phase
    /// that will stream its points. Returns the new phase, or `None` when
    /// the group was dismissed.
    fn enter_group(&mut self, gi: usize) -> Option<DtssPhase<'a>> {
        let dtss = self.dtss;
        let group = &dtss.groups[gi];
        let key = &group.key;
        let posts: Vec<u32> = key
            .iter()
            .enumerate()
            .map(|(d, &v)| self.domains[d].labeling().post(ValueId(v)))
            .collect();
        let plan = self.plans.remove(&gi);
        match plan {
            Some(GroupPlan::Dismissed) => {
                self.groups_skipped += 1;
                return None;
            }
            Some(GroupPlan::Local(survivors)) => {
                // §V-B io charge for reading the stored local-skyline file
                // (the screen consumed the whole list, as in serial mode).
                let local_len = group
                    .local_skyline
                    .as_ref()
                    .expect("Local plans come from local-skyline groups")
                    .len();
                self.m.io_reads += dtss
                    .cfg
                    .page
                    .data_pages(local_len, dtss.table.to_dims() + key.len());
                return Some(DtssPhase::LocalPre { gi, survivors });
            }
            Some(GroupPlan::Live) => {
                // Dismissal already decided against the frozen skyline;
                // fall through to the live traversal setup.
            }
            None => {
                // Serial mode: dismissal check against the current skyline.
                let corner = group.root_corner(self.reference.as_deref());
                let dominated = if let Some(vpi) = self.vpi.as_ref() {
                    let (hit, queries) = vpi.covers_value(&corner, &posts);
                    self.m.dominance_checks += queries;
                    hit
                } else {
                    let (hit, examined) =
                        self.sky
                            .group_dismissed(&self.domains, &dtss.table, &corner, key);
                    self.m.batch(examined);
                    hit
                };
                if dominated {
                    self.groups_skipped += 1;
                    return None;
                }
            }
        }

        // Optional per-group dominator prefilter: global entries whose PO
        // values can dominate this key, with their PO strictness. The
        // surviving positions feed the strictness-precomputed TO kernel.
        let filtered: Option<Vec<(u32, bool)>> = dtss.cfg.filter_dominators.then(|| {
            self.sky
                .filter_dominators(&self.domains, &dtss.table, key, &mut self.m)
        });

        // Local skylines are computed under origin-anchored dominance and
        // are invalid for folded queries (§V-B).
        if let (Some(local), None) = (group.local_skyline.as_ref(), self.reference.as_ref()) {
            // §V-B: only local skyline points can be global results.
            // Charge the pages of the stored local-skyline file.
            self.m.io_reads += dtss
                .cfg
                .page
                .data_pages(local.len(), dtss.table.to_dims() + key.len());
            return Some(DtssPhase::Local {
                gi,
                posts,
                filtered,
                ix: 0,
            });
        }
        group.tree.reset_io();
        let bf = group.tree.best_first_from(self.reference.as_deref());
        Some(DtssPhase::Tree {
            gi,
            posts,
            filtered,
            bf,
        })
    }

    /// Duplicate completion, as in sTSS (see `StssCursor`): closed Boolean
    /// bounds in the fast path can coalesce exact duplicates of skyline
    /// points inside pruned subtrees. Tuples identical in folded coordinates
    /// and PO values are skyline iff their representative is.
    fn compute_extras(&self) -> VecDeque<SkylinePoint> {
        let table = &self.dtss.table;
        let mut emitted = vec![false; table.len()];
        for &r in &self.sky.ids {
            emitted[r as usize] = true;
        }
        let mut extras = VecDeque::new();
        for (i, done) in emitted.iter().enumerate() {
            if *done {
                continue;
            }
            let folded = self.fold(table.to_row(i));
            if self.sky.contains_key(&folded, table.po_row(i), table) {
                extras.push_back(self.yielded(i as u32));
            }
        }
        extras
    }

    fn finish(&mut self) {
        if !self.finished {
            self.m.cpu = self.start.elapsed();
            self.finished = true;
        }
        self.phase = DtssPhase::Done;
    }
}

impl SkylineCursor for DtssCursor<'_> {
    fn next(&mut self) -> Option<SkylinePoint> {
        loop {
            let phase = std::mem::replace(&mut self.phase, DtssPhase::Done);
            match phase {
                DtssPhase::Done => return None,
                DtssPhase::Replay(mut queue) => {
                    let sp = queue.pop_front()?;
                    self.m.results += 1;
                    self.take_sample(0);
                    self.phase = DtssPhase::Replay(queue);
                    return Some(sp);
                }
                DtssPhase::Extras(mut queue) => {
                    let Some(sp) = queue.pop_front() else {
                        self.finish();
                        return None;
                    };
                    self.m.results += 1;
                    self.take_sample(0);
                    self.phase = DtssPhase::Extras(queue);
                    return Some(sp);
                }
                DtssPhase::NextGroup => {
                    let Some(&gi) = self.order.get(self.order_ix) else {
                        self.phase = DtssPhase::Extras(self.compute_extras());
                        continue;
                    };
                    if self.parallel() && !self.plans.contains_key(&gi) {
                        self.plan_stratum(self.order_ix);
                    }
                    self.order_ix += 1;
                    if let Some(next) = self.enter_group(gi) {
                        self.phase = next;
                    } else {
                        self.phase = DtssPhase::NextGroup;
                    }
                }
                DtssPhase::Local {
                    gi,
                    posts,
                    mut filtered,
                    mut ix,
                } => {
                    let dtss = self.dtss;
                    let group = &dtss.groups[gi];
                    let local = group
                        .local_skyline
                        .as_ref()
                        .expect("Local phase requires precomputed skylines");
                    while let Some(&r) = local.get(ix) {
                        ix += 1;
                        let to = dtss.table.to(r);
                        if !dtss.point_dominated(
                            to,
                            &group.key,
                            &posts,
                            &self.domains,
                            &self.sky,
                            self.vpi.as_ref(),
                            filtered.as_deref(),
                            &mut self.m,
                        ) {
                            dtss.emit(
                                r,
                                to,
                                &group.key,
                                &self.domains,
                                &mut self.sky,
                                self.vpi.as_mut(),
                                filtered.as_mut(),
                                &mut self.m,
                            );
                            self.take_sample(0);
                            self.phase = DtssPhase::Local {
                                gi,
                                posts,
                                filtered,
                                ix,
                            };
                            return Some(self.yielded(r));
                        }
                    }
                    self.phase = DtssPhase::NextGroup;
                }
                DtssPhase::LocalPre { gi, mut survivors } => {
                    let dtss = self.dtss;
                    let group = &dtss.groups[gi];
                    if let Some(r) = survivors.pop_front() {
                        let to = dtss.table.to(r);
                        dtss.emit(
                            r,
                            to,
                            &group.key,
                            &self.domains,
                            &mut self.sky,
                            None,
                            None,
                            &mut self.m,
                        );
                        self.take_sample(0);
                        self.phase = DtssPhase::LocalPre { gi, survivors };
                        return Some(self.yielded(r));
                    }
                    self.phase = DtssPhase::NextGroup;
                }
                DtssPhase::Tree {
                    gi,
                    posts,
                    mut filtered,
                    mut bf,
                } => {
                    let dtss = self.dtss;
                    let group = &dtss.groups[gi];
                    let key = &group.key;
                    while let Some(popped) = bf.pop() {
                        self.m.heap_pops += 1;
                        match popped {
                            Popped::Node { id, mbb, .. } => {
                                // Borrow the corner straight off the MBB in
                                // the common (origin-anchored) case.
                                let folded_corner;
                                let corner: &[u32] = match &self.reference {
                                    None => mbb.lo(),
                                    Some(r) => {
                                        folded_corner = mbb.folded_corner(r);
                                        &folded_corner
                                    }
                                };
                                if !dtss.node_dominated(
                                    corner,
                                    key,
                                    &posts,
                                    &self.domains,
                                    &self.sky,
                                    self.vpi.as_ref(),
                                    filtered.as_deref(),
                                    &mut self.m,
                                ) {
                                    bf.expand(id);
                                }
                            }
                            Popped::Record { point, record, .. } => {
                                // Fold into the reused scratch; the common
                                // (origin-anchored) query reads the popped
                                // slice directly — no per-record rows.
                                let folded: &[u32] = match &self.reference {
                                    None => point,
                                    Some(r) => {
                                        self.fold_scratch.clear();
                                        self.fold_scratch.extend(
                                            point
                                                .iter()
                                                .zip(r.iter())
                                                .map(|(&a, &b)| a.abs_diff(b)),
                                        );
                                        &self.fold_scratch
                                    }
                                };
                                if !dtss.point_dominated(
                                    folded,
                                    key,
                                    &posts,
                                    &self.domains,
                                    &self.sky,
                                    self.vpi.as_ref(),
                                    filtered.as_deref(),
                                    &mut self.m,
                                ) {
                                    dtss.emit(
                                        record,
                                        folded,
                                        key,
                                        &self.domains,
                                        &mut self.sky,
                                        self.vpi.as_mut(),
                                        filtered.as_mut(),
                                        &mut self.m,
                                    );
                                    self.take_sample(group.tree.io_count());
                                    self.phase = DtssPhase::Tree {
                                        gi,
                                        posts,
                                        filtered,
                                        bf,
                                    };
                                    return Some(self.yielded(record));
                                }
                            }
                        }
                    }
                    self.m.io_reads += group.tree.io_count();
                    self.phase = DtssPhase::NextGroup;
                }
            }
        }
    }

    fn metrics(&self) -> Metrics {
        let mut m = self.m;
        if !self.finished {
            if let DtssPhase::Tree { gi, .. } = &self.phase {
                m.io_reads += self.dtss.groups[*gi].tree.io_count();
            }
            m.cpu = self.start.elapsed();
        }
        m
    }

    fn progress(&self) -> ProgressSample {
        self.last_sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::brute_force_po_skyline;
    use poset::PartialOrderBuilder;
    use proptest::prelude::*;

    /// The data set of Fig. 5(a): (A1, A2, A3) with A3 ∈ {a=0, b=1, c=2}.
    fn fig5_table() -> Table {
        let mut t = Table::new(2, 1);
        for (a1, a2, a3) in [
            (1, 2, 0), // p1 a
            (3, 1, 0), // p2 a
            (3, 4, 0), // p3 a
            (4, 5, 0), // p4 a
            (2, 2, 1), // p5 b
            (1, 5, 1), // p6 b
            (2, 5, 2), // p7 c
            (3, 4, 2), // p8 c
            (4, 4, 2), // p9 c
            (5, 2, 2), // p10 c
        ] {
            t.push(&[a1, a2], &[a3]);
        }
        t
    }

    fn order_b_over_c() -> Dag {
        // First query of §V-A: "b is better than c, no other preference".
        let mut b = PartialOrderBuilder::new();
        b.values(["a", "b", "c"]);
        b.prefer("b", "c").unwrap();
        b.build().unwrap()
    }

    fn order_a_c_over_b() -> Dag {
        // Second query (Fig. 6(a)): a and c both better than b.
        let mut b = PartialOrderBuilder::new();
        b.values(["a", "b", "c"]);
        b.prefer("a", "b").unwrap();
        b.prefer("c", "b").unwrap();
        b.build().unwrap()
    }

    fn configs() -> Vec<DtssConfig> {
        vec![
            DtssConfig::default(),
            DtssConfig {
                fast_check: true,
                ..Default::default()
            },
            DtssConfig {
                precompute_local: true,
                ..Default::default()
            },
            DtssConfig {
                filter_dominators: true,
                ..Default::default()
            },
            DtssConfig {
                fast_check: true,
                precompute_local: true,
                ..Default::default()
            },
            DtssConfig {
                precompute_local: true,
                eval_threads: 2,
                ..Default::default()
            },
            DtssConfig {
                filter_dominators: true,
                eval_threads: 3,
                ..Default::default()
            },
        ]
    }

    #[test]
    fn fig5_first_query() {
        // §V-A: skyline = {p1, p2} from Ga, {p5, p6} from Gb; Gc dismissed.
        for cfg in configs() {
            let dtss = Dtss::build(fig5_table(), vec![3], cfg).unwrap();
            let run = dtss.query(&PoQuery::new(vec![order_b_over_c()])).unwrap();
            let mut got = run.skyline_records();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 4, 5], "{cfg:?}");
            assert_eq!(run.groups_total, 3);
            assert_eq!(run.groups_skipped, 1, "Gc must be dismissed: {cfg:?}");
        }
    }

    #[test]
    fn fig6_second_query() {
        // §V-A: skyline = {p7, p8, p10} from Gc then {p1, p2} from Ga; Gb
        // dismissed without reading its tree.
        for cfg in configs() {
            let dtss = Dtss::build(fig5_table(), vec![3], cfg).unwrap();
            let run = dtss.query(&PoQuery::new(vec![order_a_c_over_b()])).unwrap();
            let mut got = run.skyline_records();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 6, 7, 9], "{cfg:?}");
            assert_eq!(run.groups_skipped, 1, "Gb must be dismissed: {cfg:?}");
        }
    }

    #[test]
    fn emission_respects_group_order() {
        // Second query: a and c are both roots; our deterministic
        // topological sort assigns a ordinal 1 and c ordinal 2 (the paper
        // draws the equally admissible order c, a, b — the skyline is
        // identical). Ga must therefore be fully emitted before Gc.
        let dtss = Dtss::build(fig5_table(), vec![3], DtssConfig::default()).unwrap();
        let run = dtss.query(&PoQuery::new(vec![order_a_c_over_b()])).unwrap();
        let recs = run.skyline_records();
        let pos = |r: u32| recs.iter().position(|&x| x == r).unwrap();
        for a_rec in [0u32, 1] {
            for c_rec in [6u32, 7, 9] {
                assert!(pos(a_rec) < pos(c_rec), "Ga before Gc: {recs:?}");
            }
        }
    }

    #[test]
    fn cache_round_trip() {
        let cfg = DtssConfig {
            cache: true,
            ..Default::default()
        };
        let dtss = Dtss::build(fig5_table(), vec![3], cfg).unwrap();
        let q = PoQuery::new(vec![order_b_over_c()]);
        let first = dtss.query(&q).unwrap();
        assert!(!first.from_cache);
        let second = dtss.query(&q).unwrap();
        assert!(second.from_cache);
        assert_eq!(first.skyline_records(), second.skyline_records());
        assert_eq!(second.metrics.io_reads, 0);
        // A different order is a cache miss.
        let third = dtss.query(&PoQuery::new(vec![order_a_c_over_b()])).unwrap();
        assert!(!third.from_cache);
    }

    #[test]
    fn parallel_strata_match_serial_exactly() {
        // Rank-stratum evaluation must reproduce the serial emission
        // sequence and dismissal counts, and its metrics must be invariant
        // to the worker count — across the plain, local-skyline and
        // prefilter configurations, for both example queries.
        let mut t = fig5_table();
        t.push(&[1, 2], &[0]); // duplicate of p1
        let serial_cfgs = [
            DtssConfig::default(),
            DtssConfig {
                precompute_local: true,
                ..Default::default()
            },
            DtssConfig {
                precompute_local: true,
                filter_dominators: true,
                ..Default::default()
            },
        ];
        for base in serial_cfgs {
            let serial = Dtss::build(t.clone(), vec![3], base).unwrap();
            for dag_fn in [order_b_over_c as fn() -> Dag, order_a_c_over_b] {
                let q = PoQuery::new(vec![dag_fn()]);
                let want = serial.query(&q).unwrap();
                let mut reference: Option<Metrics> = None;
                for threads in [1usize, 2, 4] {
                    let cfg = DtssConfig {
                        eval_threads: threads,
                        ..base
                    };
                    let dtss = Dtss::build(t.clone(), vec![3], cfg).unwrap();
                    let run = dtss.query(&q).unwrap();
                    assert_eq!(
                        run.skyline_records(),
                        want.skyline_records(),
                        "emission order: {base:?} threads={threads}"
                    );
                    assert_eq!(run.groups_skipped, want.groups_skipped);
                    assert_eq!(run.metrics.io_reads, want.metrics.io_reads);
                    assert_eq!(run.metrics.results, want.metrics.results);
                    match &reference {
                        None => reference = Some(run.metrics),
                        Some(m) => {
                            assert_eq!(
                                run.metrics.dominance_checks, m.dominance_checks,
                                "thread-count-invariant checks: threads={threads}"
                            );
                            assert_eq!(run.metrics.dominance_batch_calls, m.dominance_batch_calls);
                            assert_eq!(run.metrics.heap_pops, m.heap_pops);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_strata_handle_folded_queries() {
        // Under a reference point local skylines are invalid, so every
        // non-dismissed group walks its tree — but the dismissal verdicts
        // still come from the parallel stratum pass.
        let cfg = DtssConfig {
            precompute_local: true,
            eval_threads: 2,
            ..Default::default()
        };
        let dtss = Dtss::build(fig5_table(), vec![3], cfg).unwrap();
        for r in [[0u32, 0], [3, 3], [5, 1]] {
            for dag_fn in [order_b_over_c as fn() -> Dag, order_a_c_over_b] {
                let dag = dag_fn();
                let run = dtss
                    .query_fully_dynamic(&PoQuery::new(vec![dag.clone()]), &r)
                    .unwrap();
                let mut got = run.skyline_records();
                got.sort_unstable();
                let mut expect = folded_oracle(&fig5_table(), &dag, &r);
                expect.sort_unstable();
                assert_eq!(got, expect, "ref={r:?}");
            }
        }
    }

    #[test]
    fn digest_collision_is_not_served_from_the_cache() {
        // Forge a collision: plant a different query's result under the
        // digest of the one we are about to run. A key-only cache would
        // replay the wrong skyline; the structural guard must evaluate
        // afresh and leave the forged entry in place (first owner wins).
        let cfg = DtssConfig {
            cache: true,
            ..Default::default()
        };
        let dtss = Dtss::build(fig5_table(), vec![3], cfg).unwrap();
        let q = PoQuery::new(vec![order_b_over_c()]);
        let wrong_q = PoQuery::new(vec![order_a_c_over_b()]);
        assert!(!q.same_structure(&wrong_q));
        let wrong_records = dtss.query(&wrong_q).unwrap().skyline_records();
        let digest = Dtss::full_digest(&q, None);
        dtss.cache.borrow_mut().insert(
            digest,
            CachedResult {
                query: wrong_q.clone(),
                reference: None,
                records: wrong_records.clone(),
            },
        );

        let run = dtss.query(&q).unwrap();
        assert!(!run.from_cache, "collision must not replay");
        let mut got = run.skyline_records();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 4, 5]);
        // Cursor path takes the same guard.
        let mut c = dtss.query_cursor(&q).unwrap();
        assert!(!c.from_cache());
        let mut pulled = Vec::new();
        while let Some(p) = c.next() {
            pulled.push(p.record);
        }
        pulled.sort_unstable();
        assert_eq!(pulled, vec![0, 1, 4, 5]);
        // First owner keeps the slot; the forged entry is still there.
        assert!(dtss.cache.borrow()[&digest].query.same_structure(&wrong_q));
        // The *reference point* is part of the verified identity too.
        let folded = dtss.query_fully_dynamic(&q, &[3, 3]).unwrap();
        assert!(!folded.from_cache);
        let replay = dtss.query_fully_dynamic(&q, &[3, 3]).unwrap();
        assert!(replay.from_cache);
        assert_eq!(folded.skyline_records(), replay.skyline_records());
    }

    #[test]
    fn rejects_mismatched_queries() {
        let dtss = Dtss::build(fig5_table(), vec![3], DtssConfig::default()).unwrap();
        assert!(matches!(
            dtss.query(&PoQuery::new(vec![])),
            Err(CoreError::DomainCountMismatch { .. })
        ));
        let wrong = poset::Dag::from_edges(5, &[]).unwrap();
        assert!(matches!(
            dtss.query(&PoQuery::new(vec![wrong])),
            Err(CoreError::QueryDomainMismatch { .. })
        ));
    }

    #[test]
    fn empty_order_keeps_per_group_skylines() {
        // With no preferences at all, every group contributes its local
        // skyline (groups are mutually incomparable).
        let empty = poset::Dag::from_edges(3, &[]).unwrap();
        let dtss = Dtss::build(fig5_table(), vec![3], DtssConfig::default()).unwrap();
        let run = dtss.query(&PoQuery::new(vec![empty.clone()])).unwrap();
        let domains = vec![PoDomain::new(empty)];
        let mut expect = brute_force_po_skyline(&domains, &fig5_table());
        expect.sort_unstable();
        let mut got = run.skyline_records();
        got.sort_unstable();
        assert_eq!(got, expect);
        assert_eq!(run.groups_skipped, 0);
    }

    #[test]
    fn duplicates_within_group_survive() {
        let mut t = fig5_table();
        t.push(&[1, 2], &[0]); // duplicate of p1
        for cfg in configs() {
            let dtss = Dtss::build(t.clone(), vec![3], cfg).unwrap();
            let run = dtss.query(&PoQuery::new(vec![order_b_over_c()])).unwrap();
            let mut got = run.skyline_records();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 4, 5, 10], "{cfg:?}");
        }
    }

    /// Oracle for fully dynamic queries: Pareto dominance on folded TO
    /// coordinates plus the query partial order.
    fn folded_oracle(t: &Table, dag: &poset::Dag, reference: &[u32]) -> Vec<u32> {
        let doms = vec![PoDomain::new(dag.clone())];
        let fold = |row: &[u32]| -> Vec<u32> {
            row.iter()
                .zip(reference.iter())
                .map(|(&a, &b)| a.abs_diff(b))
                .collect()
        };
        (0..t.len())
            .filter(|&i| {
                !(0..t.len()).any(|j| {
                    j != i
                        && crate::dominance::t_dominates(
                            &doms,
                            &fold(t.to_row(j)),
                            t.po_row(j),
                            &fold(t.to_row(i)),
                            t.po_row(i),
                        )
                })
            })
            .map(|i| i as u32)
            .collect()
    }

    #[test]
    fn fully_dynamic_matches_folded_oracle() {
        let references: [[u32; 2]; 4] = [[0, 0], [3, 3], [5, 1], [2, 4]];
        for cfg in configs() {
            let dtss = Dtss::build(fig5_table(), vec![3], cfg).unwrap();
            for dag_fn in [order_b_over_c as fn() -> poset::Dag, order_a_c_over_b] {
                for r in &references {
                    let dag = dag_fn();
                    let run = dtss
                        .query_fully_dynamic(&PoQuery::new(vec![dag.clone()]), r)
                        .unwrap();
                    let mut got = run.skyline_records();
                    got.sort_unstable();
                    let mut expect = folded_oracle(&fig5_table(), &dag, r);
                    expect.sort_unstable();
                    assert_eq!(got, expect, "cfg={cfg:?} ref={r:?}");
                    // Reported coordinates are the originals.
                    for p in &run.skyline {
                        assert_eq!(p.to, fig5_table().to_row(p.record as usize));
                    }
                }
            }
        }
    }

    #[test]
    fn fully_dynamic_at_origin_equals_plain_query() {
        let dtss = Dtss::build(fig5_table(), vec![3], DtssConfig::default()).unwrap();
        let q = PoQuery::new(vec![order_b_over_c()]);
        let plain = dtss.query(&q).unwrap();
        let folded = dtss.query_fully_dynamic(&q, &[0, 0]).unwrap();
        assert_eq!(plain.skyline_records(), folded.skyline_records());
    }

    #[test]
    fn fully_dynamic_cache_keys_include_reference() {
        let cfg = DtssConfig {
            cache: true,
            ..Default::default()
        };
        let dtss = Dtss::build(fig5_table(), vec![3], cfg).unwrap();
        let q = PoQuery::new(vec![order_b_over_c()]);
        let a = dtss.query_fully_dynamic(&q, &[3, 3]).unwrap();
        assert!(!a.from_cache);
        let b = dtss.query_fully_dynamic(&q, &[3, 3]).unwrap();
        assert!(b.from_cache);
        assert_eq!(a.skyline_records(), b.skyline_records());
        // Same order, different reference: a miss.
        let c = dtss.query_fully_dynamic(&q, &[4, 4]).unwrap();
        assert!(!c.from_cache);
        // And the plain query is yet another key.
        let d = dtss.query(&q).unwrap();
        assert!(!d.from_cache);
    }

    #[test]
    #[should_panic(expected = "one ideal value per TO attribute")]
    fn fully_dynamic_rejects_bad_reference() {
        let dtss = Dtss::build(fig5_table(), vec![3], DtssConfig::default()).unwrap();
        let _ = dtss.query_fully_dynamic(&PoQuery::new(vec![order_b_over_c()]), &[1]);
    }

    proptest! {

        #![proptest_config(ProptestConfig::with_cases(24))]
        /// dTSS equals the oracle for random tables and random query orders,
        /// across configurations.
        #[test]
        fn equals_oracle(
            rows in proptest::collection::vec((0u32..10, 0u32..10, 0u32..5), 1..60),
            edge_mask in 0u32..1024,
            cfg_ix in 0usize..7,
        ) {
            let mut t = Table::new(2, 1);
            for &(a, b, v) in &rows {
                t.push(&[a, b], &[v]);
            }
            // Random partial order over 5 values from the mask (forward
            // edges only -> acyclic).
            let mut edges = Vec::new();
            let mut bit = 0;
            for i in 0..5u32 {
                for j in (i + 1)..5u32 {
                    if edge_mask >> bit & 1 == 1 {
                        edges.push((i, j));
                    }
                    bit += 1;
                }
            }
            let dag = poset::Dag::from_edges(5, &edges).unwrap();
            let domains = vec![PoDomain::new(dag.clone())];
            let mut expect = brute_force_po_skyline(&domains, &t);
            expect.sort_unstable();
            let cfg = configs()[cfg_ix];
            let dtss = Dtss::build(t, vec![5], cfg).unwrap();
            let run = dtss.query(&PoQuery::new(vec![dag])).unwrap();
            let mut got = run.skyline_records();
            got.sort_unstable();
            prop_assert_eq!(got, expect);
        }
    }
}

//! **dTSS** — dynamic skylines for partially ordered domains (§V).
//!
//! A dynamic skyline query *explicitly* specifies the partial order of every
//! PO attribute, so dominance relationships change per query. Rebuilding the
//! transformed index per query (as sTSS or the SDC baselines would need to)
//! costs passes over the whole data set; dTSS avoids that entirely:
//!
//! * **Build once:** tuples are partitioned into *groups* by their PO value
//!   combination; each group gets its own R-tree over the TO attributes.
//!   Groups and trees are *independent of any partial order*.
//! * **Per query:** the supplied DAGs are topologically sorted and labeled
//!   (cheap — the domains are small). Groups are visited in ascending sum of
//!   their values' topological ordinals, which guarantees precedence across
//!   groups: a dominating group's values are all preferred-or-equal, hence
//!   have ordinal-sum strictly below (distinct keys). Inside a group, BBS
//!   over the TO tree gives precedence as usual, so every surviving point is
//!   emitted immediately.
//! * **Group skipping:** before touching a group's tree, its root MBB corner
//!   is checked against the global skyline; a dominated corner dismisses the
//!   whole group without reading a single page (the Fig. 5 `Gc` moment).
//! * **Optimizations (§V-B):** precomputed per-group *local skylines* (order
//!   independent!) shrink each group to the only points that can possibly
//!   qualify; a query-digest cache reuses full results of repeated orders.

use crate::dominance::t_dominates;
use crate::stss::SkylinePoint;
use crate::{CoreError, Metrics, PoDomain, Table, VirtualPointIndex};
use poset::{Dag, ValueId};
use rtree::{PageConfig, Popped, RTree};
use std::cell::RefCell;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::time::Instant;

/// A dynamic skyline query: one partial order per PO attribute, over the
/// same value ids the data was loaded with.
#[derive(Debug, Clone)]
pub struct PoQuery {
    dags: Vec<Dag>,
}

impl PoQuery {
    /// Wraps the per-attribute partial orders.
    pub fn new(dags: Vec<Dag>) -> Self {
        PoQuery { dags }
    }

    /// The partial orders.
    pub fn dags(&self) -> &[Dag] {
        &self.dags
    }

    /// A canonical digest of the query (domain sizes + edge sets), used as
    /// the cache key.
    pub fn digest(&self) -> u64 {
        let mut h = DefaultHasher::new();
        for dag in &self.dags {
            dag.len().hash(&mut h);
            for (u, v) in dag.edges() {
                (u.0, v.0).hash(&mut h);
            }
        }
        h.finish()
    }
}

/// Tuning knobs for [`Dtss`]. Defaults reproduce the paper's benchmark
/// configuration (§VI-C: "no buffers, global main memory R-tree,
/// pre-processing or caching mechanisms are used").
#[derive(Debug, Clone, Copy, Default)]
pub struct DtssConfig {
    /// Page model for node capacities and local-skyline page charging.
    pub page: PageConfig,
    /// Explicit node capacity override.
    pub node_capacity: Option<usize>,
    /// Use the global main-memory virtual-point R-tree (§V-A).
    pub fast_check: bool,
    /// Precompute per-group local skylines at build time (§V-B).
    pub precompute_local: bool,
    /// Cache query results by digest (§V-B).
    pub cache: bool,
    /// Pre-filter the global skyline once per group to the entries whose PO
    /// values can dominate the group's key, turning per-point checks into
    /// TO-only comparisons. Exact; off by default (paper-plain checks).
    pub filter_dominators: bool,
}

/// One PO-value group: key, members, TO R-tree, optional local skyline.
#[derive(Debug)]
struct Group {
    key: Vec<u32>,
    tree: RTree,
    /// Local skyline record ids sorted by ascending TO coordinate sum, if
    /// precomputed.
    local_skyline: Option<Vec<u32>>,
}

/// The dTSS operator: built once over a table, queried many times with
/// different partial orders.
#[derive(Debug)]
pub struct Dtss {
    table: Table,
    domain_sizes: Vec<u32>,
    groups: Vec<Group>,
    cfg: DtssConfig,
    cache: RefCell<HashMap<u64, Vec<u32>>>,
}

/// Result of one [`Dtss::query`].
#[derive(Debug, Clone)]
pub struct DtssRun {
    /// Skyline points in emission order.
    pub skyline: Vec<SkylinePoint>,
    /// Execution metrics for this query.
    pub metrics: Metrics,
    /// Groups dismissed by the root-corner check.
    pub groups_skipped: u64,
    /// Total number of groups.
    pub groups_total: u64,
    /// True iff served from the query cache.
    pub from_cache: bool,
}

impl DtssRun {
    /// Record indices of the skyline, in emission order.
    pub fn skyline_records(&self) -> Vec<u32> {
        self.skyline.iter().map(|p| p.record).collect()
    }
}

impl Dtss {
    /// Partitions the table into groups and bulk-loads the per-group trees.
    /// `domain_sizes[d]` is the cardinality of PO domain `d` (queries must
    /// supply DAGs of exactly these sizes).
    pub fn build(table: Table, domain_sizes: Vec<u32>, cfg: DtssConfig) -> Result<Self, CoreError> {
        if table.to_dims() == 0 {
            return Err(CoreError::NoDimensions);
        }
        table.check_domains(&domain_sizes)?;
        let mut by_key: HashMap<Vec<u32>, Vec<u32>> = HashMap::new();
        for i in 0..table.len() {
            by_key
                .entry(table.po_row(i).to_vec())
                .or_default()
                .push(i as u32);
        }
        let cap = cfg
            .node_capacity
            .unwrap_or_else(|| cfg.page.capacity(table.to_dims()));
        let mut keys: Vec<Vec<u32>> = by_key.keys().cloned().collect();
        keys.sort_unstable(); // deterministic group layout
        let groups = keys
            .into_iter()
            .map(|key| {
                let records = by_key.remove(&key).unwrap();
                let pts: Vec<(Vec<u32>, u32)> = records
                    .iter()
                    .map(|&r| (table.to_row(r as usize).to_vec(), r))
                    .collect();
                let tree = RTree::bulk_load(table.to_dims(), cap, pts);
                let local_skyline = cfg.precompute_local.then(|| {
                    let (mut sky, _) = skyline::bbs(&tree);
                    sky.sort_by_key(|&r| (skyline::monotone_sum(table.to_row(r as usize)), r));
                    tree.reset_io();
                    sky
                });
                tree.reset_io();
                Group {
                    key,
                    tree,
                    local_skyline,
                }
            })
            .collect();
        Ok(Dtss {
            table,
            domain_sizes,
            groups,
            cfg,
            cache: RefCell::new(HashMap::new()),
        })
    }

    /// The input table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Number of PO-value groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Evaluates a dynamic skyline query.
    pub fn query(&self, q: &PoQuery) -> Result<DtssRun, CoreError> {
        self.query_inner(q, None)
    }

    /// Evaluates a **fully dynamic** skyline query (§V-B): besides the
    /// partial orders, the query names the *ideal value* of every TO
    /// attribute; TO dominance is taken on the folded coordinates
    /// `|x − reference|`. The precomputed local skylines are invalid under
    /// folding (the paper's observation), so this path always scans the
    /// group trees — best-first around the reference point.
    ///
    /// Reported skyline points carry their **original** TO coordinates.
    pub fn query_fully_dynamic(
        &self,
        q: &PoQuery,
        reference: &[u32],
    ) -> Result<DtssRun, CoreError> {
        assert_eq!(
            reference.len(),
            self.table.to_dims(),
            "reference must name one ideal value per TO attribute"
        );
        self.query_inner(q, Some(reference))
    }

    fn query_inner(&self, q: &PoQuery, reference: Option<&[u32]>) -> Result<DtssRun, CoreError> {
        if q.dags.len() != self.domain_sizes.len() {
            return Err(CoreError::DomainCountMismatch {
                dags: q.dags.len(),
                po_dims: self.domain_sizes.len(),
            });
        }
        for (d, dag) in q.dags.iter().enumerate() {
            if dag.len() != self.domain_sizes[d] as usize {
                return Err(CoreError::QueryDomainMismatch {
                    dim: d,
                    expected: self.domain_sizes[d] as usize,
                    got: dag.len(),
                });
            }
        }
        let mut digest = q.digest();
        if let Some(r) = reference {
            use std::hash::Hasher as _;
            let mut h = DefaultHasher::new();
            digest.hash(&mut h);
            r.hash(&mut h);
            digest = h.finish();
        }
        if self.cfg.cache {
            if let Some(records) = self.cache.borrow().get(&digest) {
                let skyline = records
                    .iter()
                    .map(|&r| SkylinePoint {
                        record: r,
                        to: self.table.to_row(r as usize).to_vec(),
                        po: self.table.po_row(r as usize).to_vec(),
                    })
                    .collect::<Vec<_>>();
                return Ok(DtssRun {
                    metrics: Metrics {
                        results: skyline.len() as u64,
                        ..Default::default()
                    },
                    skyline,
                    groups_skipped: 0,
                    groups_total: self.groups.len() as u64,
                    from_cache: true,
                });
            }
        }
        let run = self.query_uncached(q, reference);
        if self.cfg.cache {
            self.cache
                .borrow_mut()
                .insert(digest, run.skyline.iter().map(|p| p.record).collect());
        }
        Ok(run)
    }

    fn query_uncached(&self, q: &PoQuery, reference: Option<&[u32]>) -> DtssRun {
        let start = Instant::now();
        let mut m = Metrics::default();
        let to_dims = self.table.to_dims();
        // Folded view of TO coordinates: |x - reference| (identity when no
        // reference is given). All dominance checks and the working skyline
        // list operate on folded coordinates.
        let fold = |to: &[u32]| -> Vec<u32> {
            match reference {
                None => to.to_vec(),
                Some(r) => to
                    .iter()
                    .zip(r.iter())
                    .map(|(&a, &b)| a.abs_diff(b))
                    .collect(),
            }
        };
        // Per-query labeling: cheap relative to the data (§V-A).
        let domains: Vec<PoDomain> = q.dags.iter().cloned().map(PoDomain::new).collect();

        // Reading the group directory (each group's key + root MBB) costs
        // sequential page IOs — the paper's §VI-C remark that many group
        // roots should be "stored in contiguous disk pages and retrieved
        // multiple at a time". One directory record ≈ key + 2·|TO| corner
        // coordinates.
        m.io_reads += self
            .cfg
            .page
            .data_pages(self.groups.len(), self.domain_sizes.len() + 2 * to_dims);

        // Visit groups by ascending sum of ordinals: precedence across groups.
        let mut order: Vec<usize> = (0..self.groups.len()).collect();
        let key_rank = |g: &Group| -> u64 {
            g.key
                .iter()
                .enumerate()
                .map(|(d, &v)| domains[d].ordinal(v) as u64)
                .sum()
        };
        order.sort_by_key(|&gi| (key_rank(&self.groups[gi]), gi));

        let mut skyline: Vec<SkylinePoint> = Vec::new();
        let mut vpi = self.cfg.fast_check.then(|| {
            VirtualPointIndex::new(
                to_dims,
                &domains,
                self.cfg.page.capacity(to_dims + 2 * domains.len()),
            )
        });
        let mut keys: HashSet<(Vec<u32>, Vec<u32>)> = HashSet::new();
        let mut groups_skipped = 0u64;

        for gi in order {
            let group = &self.groups[gi];
            let key = &group.key;
            let posts: Vec<u32> = key
                .iter()
                .enumerate()
                .map(|(d, &v)| domains[d].labeling().post(ValueId(v)))
                .collect();

            // --- Group dismissal: check the root MBB corner. -------------
            let root = group.tree.root().expect("groups are non-empty");
            let corner = match reference {
                None => group.tree.mbb(root).lo().to_vec(),
                Some(r) => group.tree.mbb(root).folded_corner(r),
            };
            let dominated = if let Some(vpi) = vpi.as_ref() {
                let (hit, queries) = vpi.covers_value(&corner, &posts);
                m.dominance_checks += queries;
                hit
            } else {
                skyline.iter().any(|s| {
                    m.dominance_checks += 1;
                    s.to.iter().zip(corner.iter()).all(|(sv, cv)| sv <= cv)
                        && key
                            .iter()
                            .enumerate()
                            .all(|(d, &kv)| domains[d].pref_or_equal(s.po[d], kv))
                })
            };
            if dominated {
                groups_skipped += 1;
                continue;
            }

            // Optional per-group dominator prefilter: global entries whose
            // PO values can dominate this key, with their PO strictness.
            let filtered: Option<Vec<(usize, bool)>> = self.cfg.filter_dominators.then(|| {
                skyline
                    .iter()
                    .enumerate()
                    .filter_map(|(ix, s)| {
                        m.dominance_checks += 1;
                        let ok = key
                            .iter()
                            .enumerate()
                            .all(|(d, &kv)| domains[d].pref_or_equal(s.po[d], kv));
                        ok.then(|| (ix, s.po != *key))
                    })
                    .collect()
            });
            let mut filtered = filtered;

            // --- Process the group's points in TO mindist order. ---------
            // Local skylines are computed under origin-anchored dominance
            // and are invalid for folded queries (§V-B).
            if let (Some(local), None) = (group.local_skyline.as_ref(), reference) {
                // §V-B: only local skyline points can be global results.
                // Charge the pages of the stored local-skyline file.
                m.io_reads += self.cfg.page.data_pages(local.len(), to_dims + key.len());
                for &r in local {
                    let to = self.table.to_row(r as usize);
                    if !self.point_dominated(
                        to,
                        key,
                        &posts,
                        &domains,
                        &skyline,
                        vpi.as_ref(),
                        &keys,
                        filtered.as_deref(),
                        &mut m,
                    ) {
                        self.emit(
                            r,
                            to,
                            key,
                            &domains,
                            &mut skyline,
                            vpi.as_mut(),
                            &mut keys,
                            filtered.as_mut(),
                            &mut m,
                        );
                    }
                }
                continue;
            }

            group.tree.reset_io();
            let mut bf = group.tree.best_first_from(reference);
            while let Some(popped) = bf.pop() {
                m.heap_pops += 1;
                match popped {
                    Popped::Node { id, mbb, .. } => {
                        let corner = match reference {
                            None => mbb.lo().to_vec(),
                            Some(r) => mbb.folded_corner(r),
                        };
                        if !self.node_dominated(
                            &corner,
                            key,
                            &posts,
                            &domains,
                            &skyline,
                            vpi.as_ref(),
                            filtered.as_deref(),
                            &mut m,
                        ) {
                            bf.expand(id);
                        }
                    }
                    Popped::Record { point, record, .. } => {
                        let folded = fold(point);
                        if !self.point_dominated(
                            &folded,
                            key,
                            &posts,
                            &domains,
                            &skyline,
                            vpi.as_ref(),
                            &keys,
                            filtered.as_deref(),
                            &mut m,
                        ) {
                            self.emit(
                                record,
                                &folded,
                                key,
                                &domains,
                                &mut skyline,
                                vpi.as_mut(),
                                &mut keys,
                                filtered.as_mut(),
                                &mut m,
                            );
                        }
                    }
                }
            }
            m.io_reads += group.tree.io_count();
        }

        // Duplicate completion, as in sTSS (see `Stss::run_with`): closed
        // Boolean bounds in the fast path can coalesce exact duplicates of
        // skyline points inside pruned subtrees. Tuples identical in folded
        // coordinates and PO values are skyline iff their representative is.
        {
            let mut emitted = vec![false; self.table.len()];
            for p in &skyline {
                emitted[p.record as usize] = true;
            }
            let key_of = |i: usize| (fold(self.table.to_row(i)), self.table.po_row(i).to_vec());
            let present: HashSet<(Vec<u32>, Vec<u32>)> = skyline
                .iter()
                .map(|p| (p.to.clone(), p.po.clone()))
                .collect();
            for (i, done) in emitted.iter().enumerate() {
                if !done && present.contains(&key_of(i)) {
                    let (to, po) = key_of(i);
                    skyline.push(SkylinePoint {
                        record: i as u32,
                        to,
                        po,
                    });
                    m.results += 1;
                }
            }
        }
        if reference.is_some() {
            // The working list holds folded coordinates; report originals.
            for p in &mut skyline {
                p.to = self.table.to_row(p.record as usize).to_vec();
            }
        }
        m.results = skyline.len() as u64;
        m.cpu = start.elapsed();
        DtssRun {
            skyline,
            metrics: m,
            groups_skipped,
            groups_total: self.groups.len() as u64,
            from_cache: false,
        }
    }

    /// Emits a confirmed skyline point, updating all side structures.
    #[allow(clippy::too_many_arguments)]
    fn emit(
        &self,
        record: u32,
        to: &[u32],
        key: &[u32],
        domains: &[PoDomain],
        skyline: &mut Vec<SkylinePoint>,
        vpi: Option<&mut VirtualPointIndex>,
        keys: &mut HashSet<(Vec<u32>, Vec<u32>)>,
        filtered: Option<&mut Vec<(usize, bool)>>,
        m: &mut Metrics,
    ) {
        let sp = SkylinePoint {
            record,
            to: to.to_vec(),
            po: key.to_vec(),
        };
        if let Some(vpi) = vpi {
            let sets: Vec<&poset::IntervalSet> = key
                .iter()
                .enumerate()
                .map(|(d, &v)| domains[d].intervals(v))
                .collect();
            vpi.insert(to, &sets, record);
        }
        if let Some(filtered) = filtered {
            // Same-key entry: can dominate later points of this group via TO.
            filtered.push((skyline.len(), false));
        }
        keys.insert((sp.to.clone(), sp.po.clone()));
        skyline.push(sp);
        m.results += 1;
    }

    /// Exact point check against the global skyline.
    #[allow(clippy::too_many_arguments)]
    fn point_dominated(
        &self,
        to: &[u32],
        key: &[u32],
        posts: &[u32],
        domains: &[PoDomain],
        skyline: &[SkylinePoint],
        vpi: Option<&VirtualPointIndex>,
        keys: &HashSet<(Vec<u32>, Vec<u32>)>,
        filtered: Option<&[(usize, bool)]>,
        m: &mut Metrics,
    ) -> bool {
        if let Some(vpi) = vpi {
            if keys.contains(&(to.to_vec(), key.to_vec())) {
                return false; // exact duplicate of a skyline point
            }
            let (hit, queries) = vpi.covers_value(to, posts);
            m.dominance_checks += queries;
            return hit;
        }
        if let Some(filtered) = filtered {
            return filtered.iter().any(|&(ix, po_strict)| {
                m.dominance_checks += 1;
                let s = &skyline[ix];
                s.to.iter().zip(to.iter()).all(|(sv, tv)| sv <= tv) && (po_strict || s.to != to)
            });
        }
        skyline.iter().any(|s| {
            m.dominance_checks += 1;
            t_dominates(domains, &s.to, &s.po, to, key)
        })
    }

    /// Sound subtree check: the group's PO values are fixed, so only the TO
    /// corner varies. A global entry `s` prunes the subtree iff `s.to` is at
    /// most the corner on every dimension and either `s` is PO-strictly
    /// better or `s.to` differs from the corner (the corner-equality
    /// argument of `skyline::bbs`, extended with PO strictness).
    #[allow(clippy::too_many_arguments)]
    fn node_dominated(
        &self,
        corner: &[u32],
        key: &[u32],
        posts: &[u32],
        domains: &[PoDomain],
        skyline: &[SkylinePoint],
        vpi: Option<&VirtualPointIndex>,
        filtered: Option<&[(usize, bool)]>,
        m: &mut Metrics,
    ) -> bool {
        if let Some(vpi) = vpi {
            let (hit, queries) = vpi.covers_value(corner, posts);
            m.dominance_checks += queries;
            return hit;
        }
        if let Some(filtered) = filtered {
            return filtered.iter().any(|&(ix, po_strict)| {
                m.dominance_checks += 1;
                let s = &skyline[ix];
                s.to.iter().zip(corner.iter()).all(|(sv, cv)| sv <= cv)
                    && (po_strict || s.to != corner)
            });
        }
        skyline.iter().any(|s| {
            m.dominance_checks += 1;
            s.to.iter().zip(corner.iter()).all(|(sv, cv)| sv <= cv)
                && key
                    .iter()
                    .enumerate()
                    .all(|(d, &kv)| domains[d].pref_or_equal(s.po[d], kv))
                && (s.po != key || s.to != corner)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::brute_force_po_skyline;
    use poset::PartialOrderBuilder;
    use proptest::prelude::*;

    /// The data set of Fig. 5(a): (A1, A2, A3) with A3 ∈ {a=0, b=1, c=2}.
    fn fig5_table() -> Table {
        let mut t = Table::new(2, 1);
        for (a1, a2, a3) in [
            (1, 2, 0), // p1 a
            (3, 1, 0), // p2 a
            (3, 4, 0), // p3 a
            (4, 5, 0), // p4 a
            (2, 2, 1), // p5 b
            (1, 5, 1), // p6 b
            (2, 5, 2), // p7 c
            (3, 4, 2), // p8 c
            (4, 4, 2), // p9 c
            (5, 2, 2), // p10 c
        ] {
            t.push(&[a1, a2], &[a3]);
        }
        t
    }

    fn order_b_over_c() -> Dag {
        // First query of §V-A: "b is better than c, no other preference".
        let mut b = PartialOrderBuilder::new();
        b.values(["a", "b", "c"]);
        b.prefer("b", "c").unwrap();
        b.build().unwrap()
    }

    fn order_a_c_over_b() -> Dag {
        // Second query (Fig. 6(a)): a and c both better than b.
        let mut b = PartialOrderBuilder::new();
        b.values(["a", "b", "c"]);
        b.prefer("a", "b").unwrap();
        b.prefer("c", "b").unwrap();
        b.build().unwrap()
    }

    fn configs() -> Vec<DtssConfig> {
        vec![
            DtssConfig::default(),
            DtssConfig {
                fast_check: true,
                ..Default::default()
            },
            DtssConfig {
                precompute_local: true,
                ..Default::default()
            },
            DtssConfig {
                filter_dominators: true,
                ..Default::default()
            },
            DtssConfig {
                fast_check: true,
                precompute_local: true,
                ..Default::default()
            },
        ]
    }

    #[test]
    fn fig5_first_query() {
        // §V-A: skyline = {p1, p2} from Ga, {p5, p6} from Gb; Gc dismissed.
        for cfg in configs() {
            let dtss = Dtss::build(fig5_table(), vec![3], cfg).unwrap();
            let run = dtss.query(&PoQuery::new(vec![order_b_over_c()])).unwrap();
            let mut got = run.skyline_records();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 4, 5], "{cfg:?}");
            assert_eq!(run.groups_total, 3);
            assert_eq!(run.groups_skipped, 1, "Gc must be dismissed: {cfg:?}");
        }
    }

    #[test]
    fn fig6_second_query() {
        // §V-A: skyline = {p7, p8, p10} from Gc then {p1, p2} from Ga; Gb
        // dismissed without reading its tree.
        for cfg in configs() {
            let dtss = Dtss::build(fig5_table(), vec![3], cfg).unwrap();
            let run = dtss.query(&PoQuery::new(vec![order_a_c_over_b()])).unwrap();
            let mut got = run.skyline_records();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 6, 7, 9], "{cfg:?}");
            assert_eq!(run.groups_skipped, 1, "Gb must be dismissed: {cfg:?}");
        }
    }

    #[test]
    fn emission_respects_group_order() {
        // Second query: a and c are both roots; our deterministic
        // topological sort assigns a ordinal 1 and c ordinal 2 (the paper
        // draws the equally admissible order c, a, b — the skyline is
        // identical). Ga must therefore be fully emitted before Gc.
        let dtss = Dtss::build(fig5_table(), vec![3], DtssConfig::default()).unwrap();
        let run = dtss.query(&PoQuery::new(vec![order_a_c_over_b()])).unwrap();
        let recs = run.skyline_records();
        let pos = |r: u32| recs.iter().position(|&x| x == r).unwrap();
        for a_rec in [0u32, 1] {
            for c_rec in [6u32, 7, 9] {
                assert!(pos(a_rec) < pos(c_rec), "Ga before Gc: {recs:?}");
            }
        }
    }

    #[test]
    fn cache_round_trip() {
        let cfg = DtssConfig {
            cache: true,
            ..Default::default()
        };
        let dtss = Dtss::build(fig5_table(), vec![3], cfg).unwrap();
        let q = PoQuery::new(vec![order_b_over_c()]);
        let first = dtss.query(&q).unwrap();
        assert!(!first.from_cache);
        let second = dtss.query(&q).unwrap();
        assert!(second.from_cache);
        assert_eq!(first.skyline_records(), second.skyline_records());
        assert_eq!(second.metrics.io_reads, 0);
        // A different order is a cache miss.
        let third = dtss.query(&PoQuery::new(vec![order_a_c_over_b()])).unwrap();
        assert!(!third.from_cache);
    }

    #[test]
    fn rejects_mismatched_queries() {
        let dtss = Dtss::build(fig5_table(), vec![3], DtssConfig::default()).unwrap();
        assert!(matches!(
            dtss.query(&PoQuery::new(vec![])),
            Err(CoreError::DomainCountMismatch { .. })
        ));
        let wrong = poset::Dag::from_edges(5, &[]).unwrap();
        assert!(matches!(
            dtss.query(&PoQuery::new(vec![wrong])),
            Err(CoreError::QueryDomainMismatch { .. })
        ));
    }

    #[test]
    fn empty_order_keeps_per_group_skylines() {
        // With no preferences at all, every group contributes its local
        // skyline (groups are mutually incomparable).
        let empty = poset::Dag::from_edges(3, &[]).unwrap();
        let dtss = Dtss::build(fig5_table(), vec![3], DtssConfig::default()).unwrap();
        let run = dtss.query(&PoQuery::new(vec![empty.clone()])).unwrap();
        let domains = vec![PoDomain::new(empty)];
        let mut expect = brute_force_po_skyline(&domains, &fig5_table());
        expect.sort_unstable();
        let mut got = run.skyline_records();
        got.sort_unstable();
        assert_eq!(got, expect);
        assert_eq!(run.groups_skipped, 0);
    }

    #[test]
    fn duplicates_within_group_survive() {
        let mut t = fig5_table();
        t.push(&[1, 2], &[0]); // duplicate of p1
        for cfg in configs() {
            let dtss = Dtss::build(t.clone(), vec![3], cfg).unwrap();
            let run = dtss.query(&PoQuery::new(vec![order_b_over_c()])).unwrap();
            let mut got = run.skyline_records();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 4, 5, 10], "{cfg:?}");
        }
    }

    /// Oracle for fully dynamic queries: Pareto dominance on folded TO
    /// coordinates plus the query partial order.
    fn folded_oracle(t: &Table, dag: &poset::Dag, reference: &[u32]) -> Vec<u32> {
        let doms = vec![PoDomain::new(dag.clone())];
        let fold = |row: &[u32]| -> Vec<u32> {
            row.iter()
                .zip(reference.iter())
                .map(|(&a, &b)| a.abs_diff(b))
                .collect()
        };
        (0..t.len())
            .filter(|&i| {
                !(0..t.len()).any(|j| {
                    j != i
                        && crate::dominance::t_dominates(
                            &doms,
                            &fold(t.to_row(j)),
                            t.po_row(j),
                            &fold(t.to_row(i)),
                            t.po_row(i),
                        )
                })
            })
            .map(|i| i as u32)
            .collect()
    }

    #[test]
    fn fully_dynamic_matches_folded_oracle() {
        let references: [[u32; 2]; 4] = [[0, 0], [3, 3], [5, 1], [2, 4]];
        for cfg in configs() {
            let dtss = Dtss::build(fig5_table(), vec![3], cfg).unwrap();
            for dag_fn in [order_b_over_c as fn() -> poset::Dag, order_a_c_over_b] {
                for r in &references {
                    let dag = dag_fn();
                    let run = dtss
                        .query_fully_dynamic(&PoQuery::new(vec![dag.clone()]), r)
                        .unwrap();
                    let mut got = run.skyline_records();
                    got.sort_unstable();
                    let mut expect = folded_oracle(&fig5_table(), &dag, r);
                    expect.sort_unstable();
                    assert_eq!(got, expect, "cfg={cfg:?} ref={r:?}");
                    // Reported coordinates are the originals.
                    for p in &run.skyline {
                        assert_eq!(p.to, fig5_table().to_row(p.record as usize));
                    }
                }
            }
        }
    }

    #[test]
    fn fully_dynamic_at_origin_equals_plain_query() {
        let dtss = Dtss::build(fig5_table(), vec![3], DtssConfig::default()).unwrap();
        let q = PoQuery::new(vec![order_b_over_c()]);
        let plain = dtss.query(&q).unwrap();
        let folded = dtss.query_fully_dynamic(&q, &[0, 0]).unwrap();
        assert_eq!(plain.skyline_records(), folded.skyline_records());
    }

    #[test]
    fn fully_dynamic_cache_keys_include_reference() {
        let cfg = DtssConfig {
            cache: true,
            ..Default::default()
        };
        let dtss = Dtss::build(fig5_table(), vec![3], cfg).unwrap();
        let q = PoQuery::new(vec![order_b_over_c()]);
        let a = dtss.query_fully_dynamic(&q, &[3, 3]).unwrap();
        assert!(!a.from_cache);
        let b = dtss.query_fully_dynamic(&q, &[3, 3]).unwrap();
        assert!(b.from_cache);
        assert_eq!(a.skyline_records(), b.skyline_records());
        // Same order, different reference: a miss.
        let c = dtss.query_fully_dynamic(&q, &[4, 4]).unwrap();
        assert!(!c.from_cache);
        // And the plain query is yet another key.
        let d = dtss.query(&q).unwrap();
        assert!(!d.from_cache);
    }

    #[test]
    #[should_panic(expected = "one ideal value per TO attribute")]
    fn fully_dynamic_rejects_bad_reference() {
        let dtss = Dtss::build(fig5_table(), vec![3], DtssConfig::default()).unwrap();
        let _ = dtss.query_fully_dynamic(&PoQuery::new(vec![order_b_over_c()]), &[1]);
    }

    proptest! {

        #![proptest_config(ProptestConfig::with_cases(24))]
        /// dTSS equals the oracle for random tables and random query orders,
        /// across configurations.
        #[test]
        fn equals_oracle(
            rows in proptest::collection::vec((0u32..10, 0u32..10, 0u32..5), 1..60),
            edge_mask in 0u32..1024,
            cfg_ix in 0usize..5,
        ) {
            let mut t = Table::new(2, 1);
            for &(a, b, v) in &rows {
                t.push(&[a, b], &[v]);
            }
            // Random partial order over 5 values from the mask (forward
            // edges only -> acyclic).
            let mut edges = Vec::new();
            let mut bit = 0;
            for i in 0..5u32 {
                for j in (i + 1)..5u32 {
                    if edge_mask >> bit & 1 == 1 {
                        edges.push((i, j));
                    }
                    bit += 1;
                }
            }
            let dag = poset::Dag::from_edges(5, &edges).unwrap();
            let domains = vec![PoDomain::new(dag.clone())];
            let mut expect = brute_force_po_skyline(&domains, &t);
            expect.sort_unstable();
            let cfg = configs()[cfg_ix];
            let dtss = Dtss::build(t, vec![5], cfg).unwrap();
            let run = dtss.query(&PoQuery::new(vec![dag])).unwrap();
            let mut got = run.skyline_records();
            got.sort_unstable();
            prop_assert_eq!(got, expect);
        }
    }
}

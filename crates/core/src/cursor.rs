//! The **pull-based execution model**: every skyline algorithm in the
//! workspace is drivable through a [`SkylineCursor`] — results stream out
//! one [`SkylinePoint`] per [`next`](SkylineCursor::next) call, in the
//! engine's emission order, with [`Metrics`] and a [`ProgressSample`]
//! observable mid-stream.
//!
//! The paper's headline property is *optimal progressiveness* (§IV,
//! Fig. 11): skyline points are confirmed the moment the traversal reaches
//! them. Push-style callbacks expose that property only to code willing to
//! run the traversal to completion; a pull cursor makes it *consumable* —
//! stop after the first `k` results (top-k prefixes), paginate, interleave
//! many concurrent queries, or hand the cursor to an async executor. For
//! precedence-based engines (sTSS, dTSS, BBS) stopping early also *costs*
//! less: nodes that would only produce later results are never expanded, so
//! a `k`-prefix pull performs strictly fewer page reads than a full run.
//!
//! [`SkylineEngine`] is the object-safe factory trait every engine
//! implements: sTSS, dTSS (bound to a query), the three m-dominance
//! baselines (BBS+/SDC/SDC+ in the `sdc` crate) and the classic totally
//! ordered algorithms (via [`ClassicEngine`](crate::ClassicEngine)).
//!
//! # Top-k prefix example
//!
//! ```
//! use tss_core::{SkylineCursor, SkylineEngine, Stss, StssConfig, Table};
//! use poset::Dag;
//!
//! let mut table = Table::new(1, 1);
//! for (price, airline) in [(3, 0), (1, 8), (2, 4), (9, 8), (4, 0)] {
//!     table.push(&[price], &[airline]);
//! }
//! let stss = Stss::build(table, vec![Dag::paper_example()], StssConfig::default()).unwrap();
//!
//! // Pull exactly two results and stop — the rest of the tree is never read.
//! let mut cursor = stss.open();
//! let top2 = cursor.take_k(2);
//! assert_eq!(top2.len(), 2);
//! assert!(cursor.metrics().results == 2);
//!
//! // The pulled prefix matches the full progressive order.
//! let all = stss.open().take_k(usize::MAX);
//! assert_eq!(&all[..2], &top2[..]);
//! ```

use crate::budget::{Budget, BudgetOutcome, BudgetedCursor};
use crate::stss::SkylinePoint;
use crate::{Metrics, ProgressSample};

/// A pull-based stream of confirmed skyline points.
///
/// Cursors are *lazy*: work happens inside [`next`](Self::next), and only as
/// much as needed to confirm the next point. Dropping a cursor abandons the
/// traversal — for precedence-based engines the unexpanded subtrees are
/// simply never read.
///
/// `metrics()` and `progress()` may be called at any moment, including
/// mid-stream; after the cursor is exhausted they report the final run
/// totals (and keep reporting them).
pub trait SkylineCursor {
    /// Confirms and returns the next skyline point, or `None` when the
    /// skyline is complete. Idempotent at the end: keeps returning `None`.
    fn next(&mut self) -> Option<SkylinePoint>;

    /// Metrics accumulated so far (final totals once exhausted).
    fn metrics(&self) -> Metrics;

    /// Snapshot taken when the most recent point was confirmed (all-zero
    /// before the first result).
    fn progress(&self) -> ProgressSample;

    /// Pulls at most `k` further points. `usize::MAX` drains the cursor.
    fn take_k(&mut self, k: usize) -> Vec<SkylinePoint> {
        let mut out = Vec::new();
        while out.len() < k {
            match self.next() {
                Some(p) => out.push(p),
                None => break,
            }
        }
        out
    }
}

impl<C: SkylineCursor + ?Sized> SkylineCursor for Box<C> {
    fn next(&mut self) -> Option<SkylinePoint> {
        (**self).next()
    }

    fn metrics(&self) -> Metrics {
        (**self).metrics()
    }

    fn progress(&self) -> ProgressSample {
        (**self).progress()
    }
}

/// An engine whose skyline is consumable through a [`SkylineCursor`].
///
/// `open` starts a fresh traversal; engines are immutable indexes, so any
/// number of cursors can be opened over the lifetime of the engine (one at
/// a time if the engine tracks page IOs on a shared counter — see the
/// engine's own docs).
pub trait SkylineEngine {
    /// Human-readable engine name (`"sTSS"`, `"SDC+"`, `"BNL"`, …).
    fn name(&self) -> &str;

    /// Opens a cursor over a fresh run of this engine.
    fn open(&self) -> Box<dyn SkylineCursor + '_>;

    /// Convenience: drains a fresh cursor into `(skyline, metrics)`.
    fn collect_skyline(&self) -> (Vec<SkylinePoint>, Metrics) {
        let mut c = self.open();
        let pts = c.take_k(usize::MAX);
        let m = c.metrics();
        (pts, m)
    }

    /// Convenience: runs a fresh cursor under a pair-check [`Budget`] —
    /// the complete skyline when it fits the allowance, otherwise a
    /// *sound confirmed prefix* of it (the anytime guarantee; see
    /// [`BudgetedCursor`]).
    fn collect_budgeted(&self, budget: Budget) -> BudgetOutcome {
        BudgetedCursor::run(self.open(), budget)
    }
}

/// Adapts any [`SkylineCursor`] into a standard [`Iterator`].
///
/// ```
/// use tss_core::{CursorIter, SkylineEngine, Stss, StssConfig, Table};
/// use poset::Dag;
///
/// let mut table = Table::new(1, 1);
/// table.push(&[1], &[0]); // cheap, best airline
/// table.push(&[0], &[8]); // cheaper, worst airline — incomparable
/// let stss = Stss::build(table, vec![Dag::paper_example()], StssConfig::default()).unwrap();
/// let records: Vec<u32> = CursorIter(stss.open()).map(|p| p.record).collect();
/// assert_eq!(records.len(), 2);
/// ```
pub struct CursorIter<C>(pub C);

impl<C: SkylineCursor> Iterator for CursorIter<C> {
    type Item = SkylinePoint;

    fn next(&mut self) -> Option<SkylinePoint> {
        self.0.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted cursor for exercising the provided methods.
    struct Scripted {
        points: Vec<SkylinePoint>,
        m: Metrics,
    }

    impl SkylineCursor for Scripted {
        fn next(&mut self) -> Option<SkylinePoint> {
            if self.points.is_empty() {
                return None;
            }
            self.m.results += 1;
            Some(self.points.remove(0))
        }

        fn metrics(&self) -> Metrics {
            self.m
        }

        fn progress(&self) -> ProgressSample {
            ProgressSample {
                results: self.m.results,
                elapsed_cpu: std::time::Duration::ZERO,
                io_reads: 0,
                dominance_checks: 0,
            }
        }
    }

    fn scripted(n: u32) -> Scripted {
        Scripted {
            points: (0..n)
                .map(|i| SkylinePoint {
                    record: i,
                    to: vec![i],
                    po: vec![],
                })
                .collect(),
            m: Metrics::default(),
        }
    }

    #[test]
    fn take_k_stops_early_and_drains() {
        let mut c = scripted(5);
        assert_eq!(c.take_k(2).len(), 2);
        assert_eq!(c.metrics().results, 2);
        assert_eq!(c.take_k(usize::MAX).len(), 3);
        assert!(c.next().is_none(), "exhausted cursors stay exhausted");
    }

    #[test]
    fn cursor_iter_adapts() {
        let records: Vec<u32> = CursorIter(scripted(3)).map(|p| p.record).collect();
        assert_eq!(records, vec![0, 1, 2]);
    }
}

//! [`SkylineEngine`] adapters for the classic totally ordered algorithms of
//! `crates/skyline` (§II-A): one engine per algorithm, all over the same
//! owned columnar data set.
//!
//! BNL, SFS, SaLSa and BBS stream through their genuinely incremental
//! cursors (`skyline::BnlCursor` & co.); brute force, Bitmap and Index have
//! no useful lazy structure and wrap an eager run behind the same cursor
//! interface. The data lives in a [`PointBlock`] — one flat coordinate
//! matrix, no per-point rows. Yielded [`SkylinePoint`]s carry the TO
//! coordinates and an empty PO part — these algorithms predate partially
//! ordered domains.
//!
//! ```
//! use tss_core::{ClassicAlgo, ClassicEngine, SkylineEngine};
//! use skyline::PointBlock;
//!
//! let data = PointBlock::from_rows(&[vec![5, 1], vec![1, 5], vec![3, 3], vec![4, 4]]);
//! let engine = ClassicEngine::new(data, ClassicAlgo::Sfs);
//! let (skyline, metrics) = engine.collect_skyline();
//! let mut records: Vec<u32> = skyline.iter().map(|p| p.record).collect();
//! records.sort_unstable();
//! assert_eq!(records, vec![0, 1, 2]);
//! assert!(metrics.dominance_checks > 0);
//! ```

use crate::cursor::{SkylineCursor, SkylineEngine};
use crate::stss::SkylinePoint;
use crate::{Metrics, ProgressSample};
use rtree::RTree;
use skyline::{BbsCursor, BnlCursor, PointBlock, SalsaCursor, SfsCursor, Stats};
use std::collections::VecDeque;
use std::time::Instant;

/// Which classic algorithm a [`ClassicEngine`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassicAlgo {
    /// The `O(n²)` oracle (eager; uninstrumented — reports zero
    /// dominance-check stats).
    Brute,
    /// Block Nested Loops with the given window (lazy per pass).
    Bnl {
        /// Window capacity in points.
        window: usize,
    },
    /// Sort-Filter-Skyline (incremental).
    Sfs,
    /// Sort and Limit Skyline algorithm (incremental, early-stopping).
    Salsa,
    /// Branch-and-Bound Skyline over an R-tree (incremental).
    Bbs {
        /// R-tree node capacity used when indexing the data.
        node_capacity: usize,
    },
    /// Tan et al.'s bit-sliced algorithm (eager).
    Bitmap,
    /// Tan et al.'s min-coordinate-list algorithm (eager).
    Index,
}

/// A classic totally ordered skyline algorithm over an owned columnar data
/// set, exposed through the workspace-wide [`SkylineEngine`] API.
pub struct ClassicEngine {
    data: PointBlock,
    algo: ClassicAlgo,
    /// Built once at construction for [`ClassicAlgo::Bbs`].
    tree: Option<RTree>,
}

impl ClassicEngine {
    /// Wraps a columnar `data` block for the chosen algorithm. For
    /// [`ClassicAlgo::Bbs`] the R-tree is bulk-loaded here straight off the
    /// flat matrix, mirroring the offline indexing of the tree-based
    /// engines.
    pub fn new(data: PointBlock, algo: ClassicAlgo) -> Self {
        let tree = match algo {
            ClassicAlgo::Bbs { node_capacity } => {
                let ids: Vec<u32> = (0..data.len() as u32).collect();
                Some(RTree::bulk_load_flat(
                    data.dims(),
                    node_capacity,
                    data.flat(),
                    &ids,
                ))
            }
            _ => None,
        };
        ClassicEngine { data, algo, tree }
    }

    /// Row-based ingestion convenience (tests, examples).
    pub fn from_rows(rows: &[Vec<u32>], algo: ClassicAlgo) -> Self {
        Self::new(PointBlock::from_rows(rows), algo)
    }

    /// The wrapped columnar data set.
    pub fn data(&self) -> &PointBlock {
        &self.data
    }

    /// The configured algorithm.
    pub fn algo(&self) -> ClassicAlgo {
        self.algo
    }
}

impl SkylineEngine for ClassicEngine {
    fn name(&self) -> &str {
        match self.algo {
            ClassicAlgo::Brute => "brute-force",
            ClassicAlgo::Bnl { .. } => "BNL",
            ClassicAlgo::Sfs => "SFS",
            ClassicAlgo::Salsa => "SaLSa",
            ClassicAlgo::Bbs { .. } => "BBS",
            ClassicAlgo::Bitmap => "Bitmap",
            ClassicAlgo::Index => "Index",
        }
    }

    fn open(&self) -> Box<dyn SkylineCursor + '_> {
        // The clock starts before the eager algorithms run, so their
        // up-front computation is part of the reported cpu time.
        // lint:allow(time-source): Metrics.cpu timing site — classic-engine wall clock
        let start = Instant::now();
        let source = match self.algo {
            ClassicAlgo::Brute => {
                Source::Eager(skyline::brute_force(&self.data).into(), Stats::default())
            }
            ClassicAlgo::Bnl { window } => Source::Bnl(BnlCursor::new(&self.data, window)),
            ClassicAlgo::Sfs => Source::Sfs(SfsCursor::new(&self.data)),
            ClassicAlgo::Salsa => Source::Salsa(SalsaCursor::new(&self.data)),
            ClassicAlgo::Bbs { .. } => Source::Bbs(BbsCursor::with_kernel(
                self.tree.as_ref().expect("built for ClassicAlgo::Bbs"),
                self.data.kernel(),
            )),
            ClassicAlgo::Bitmap => {
                let (records, stats) = skyline::bitmap(&self.data);
                Source::Eager(records.into(), stats)
            }
            ClassicAlgo::Index => {
                let (records, stats) = skyline::index_skyline(&self.data);
                Source::Eager(records.into(), stats)
            }
        };
        Box::new(ClassicCursor {
            data: &self.data,
            source,
            start,
            results: 0,
            last_sample: ProgressSample::default(),
            final_cpu: None,
        })
    }
}

/// Per-algorithm pull source.
enum Source<'a> {
    Bnl(BnlCursor<'a>),
    Sfs(SfsCursor<'a>),
    Salsa(SalsaCursor<'a>),
    Bbs(BbsCursor<'a>),
    /// Precomputed result queue (brute force / Bitmap / Index).
    Eager(VecDeque<u32>, Stats),
}

/// The [`SkylineCursor`] over one [`ClassicEngine`] run.
struct ClassicCursor<'a> {
    data: &'a PointBlock,
    source: Source<'a>,
    start: Instant,
    results: u64,
    last_sample: ProgressSample,
    /// Frozen cpu total, set when the stream is exhausted.
    final_cpu: Option<std::time::Duration>,
}

impl ClassicCursor<'_> {
    fn stats(&self) -> Stats {
        match &self.source {
            Source::Bnl(c) => c.stats(),
            Source::Sfs(c) => c.stats(),
            Source::Salsa(c) => c.stats(),
            Source::Bbs(c) => c.stats(),
            Source::Eager(_, stats) => *stats,
        }
    }
}

impl SkylineCursor for ClassicCursor<'_> {
    fn next(&mut self) -> Option<SkylinePoint> {
        let next = match &mut self.source {
            Source::Bnl(c) => c.next(),
            Source::Sfs(c) => c.next(),
            Source::Salsa(c) => c.next(),
            Source::Bbs(c) => c.next().map(|(r, _)| r),
            Source::Eager(queue, _) => queue.pop_front(),
        };
        let Some(record) = next else {
            if self.final_cpu.is_none() {
                self.final_cpu = Some(self.start.elapsed());
            }
            return None;
        };
        self.results += 1;
        let stats = self.stats();
        self.last_sample = ProgressSample {
            results: self.results,
            elapsed_cpu: self.start.elapsed(),
            io_reads: stats.io_reads,
            dominance_checks: stats.dominance_checks,
        };
        Some(SkylinePoint {
            record,
            to: self.data.point(record as usize).to_vec(),
            po: Vec::new(),
        })
    }

    fn metrics(&self) -> Metrics {
        let stats = self.stats();
        Metrics {
            dominance_checks: stats.dominance_checks,
            dominance_batch_calls: stats.dominance_batch_calls,
            kernel_chunks: stats.kernel_chunks,
            io_reads: stats.io_reads,
            results: self.results,
            cpu: self.final_cpu.unwrap_or_else(|| self.start.elapsed()),
            ..Default::default()
        }
    }

    fn progress(&self) -> ProgressSample {
        self.last_sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 60 anti-correlated skyline points interleaved with 60 dominated
    /// ones — a non-trivial skyline for every algorithm.
    fn sample_data() -> PointBlock {
        PointBlock::from_rows(
            &(0..60u32)
                .flat_map(|i| [vec![i, 59 - i], vec![i + 30, 89 - i]])
                .collect::<Vec<_>>(),
        )
    }

    fn all_algos() -> Vec<ClassicAlgo> {
        vec![
            ClassicAlgo::Brute,
            ClassicAlgo::Bnl { window: 8 },
            ClassicAlgo::Sfs,
            ClassicAlgo::Salsa,
            ClassicAlgo::Bbs { node_capacity: 4 },
            ClassicAlgo::Bitmap,
            ClassicAlgo::Index,
        ]
    }

    #[test]
    fn every_algorithm_matches_its_eager_run() {
        let data = sample_data();
        let expect = {
            let mut e = skyline::brute_force(&data);
            e.sort_unstable();
            e
        };
        for algo in all_algos() {
            let engine = ClassicEngine::new(data.clone(), algo);
            let (pts, metrics) = engine.collect_skyline();
            let mut got: Vec<u32> = pts.iter().map(|p| p.record).collect();
            got.sort_unstable();
            assert_eq!(got, expect, "{algo:?}");
            assert_eq!(metrics.results, expect.len() as u64, "{algo:?}");
            // Yielded coordinates round-trip and the PO part is empty.
            for p in &pts {
                assert_eq!(p.to, data.point(p.record as usize), "{algo:?}");
                assert!(p.po.is_empty());
            }
        }
    }

    #[test]
    fn incremental_prefix_matches_full_order() {
        let data = sample_data();
        for algo in [
            ClassicAlgo::Bnl { window: 8 },
            ClassicAlgo::Sfs,
            ClassicAlgo::Salsa,
            ClassicAlgo::Bbs { node_capacity: 4 },
        ] {
            let engine = ClassicEngine::new(data.clone(), algo);
            let full: Vec<u32> = engine
                .collect_skyline()
                .0
                .iter()
                .map(|p| p.record)
                .collect();
            let mut c = engine.open();
            let prefix: Vec<u32> = c.take_k(3).iter().map(|p| p.record).collect();
            assert_eq!(prefix, full[..3], "{algo:?}");
        }
    }

    #[test]
    fn engines_are_reopenable() {
        let engine = ClassicEngine::new(sample_data(), ClassicAlgo::Sfs);
        let a = engine.collect_skyline().0;
        let b = engine.collect_skyline().0;
        assert_eq!(a, b);
    }

    #[test]
    fn batched_kernels_are_accounted() {
        let engine = ClassicEngine::new(sample_data(), ClassicAlgo::Sfs);
        let (_, metrics) = engine.collect_skyline();
        assert!(metrics.dominance_batch_calls > 0);
        assert!(metrics.dominance_checks >= metrics.dominance_batch_calls / 2);
    }
}

use crate::CoreError;

/// A skyline input relation: `n` tuples with `to_dims` totally ordered
/// integer attributes (smaller is better) and `po_dims` partially ordered
/// attributes stored as value ids into their domain DAGs.
///
/// Storage is flattened row-major, so multi-million-tuple workloads cost two
/// allocations total.
#[derive(Debug, Clone, Default)]
pub struct Table {
    n: usize,
    to_dims: usize,
    po_dims: usize,
    to: Vec<u32>,
    po: Vec<u32>,
}

impl Table {
    /// An empty table with the given dimensionality.
    pub fn new(to_dims: usize, po_dims: usize) -> Self {
        Table {
            n: 0,
            to_dims,
            po_dims,
            to: Vec::new(),
            po: Vec::new(),
        }
    }

    /// Wraps pre-generated flattened matrices (e.g. from `datagen`).
    pub fn from_parts(
        to_dims: usize,
        po_dims: usize,
        to: Vec<u32>,
        po: Vec<u32>,
    ) -> Result<Self, CoreError> {
        if to_dims == 0 && po_dims == 0 {
            return Err(CoreError::NoDimensions);
        }
        let n = to
            .len()
            .checked_div(to_dims)
            .unwrap_or(po.len() / po_dims.max(1));
        if to_dims > 0 && to.len() != n * to_dims {
            return Err(CoreError::RaggedMatrix {
                what: "TO",
                len: to.len(),
                n,
                dims: to_dims,
            });
        }
        if po.len() != n * po_dims {
            return Err(CoreError::RaggedMatrix {
                what: "PO",
                len: po.len(),
                n,
                dims: po_dims,
            });
        }
        Ok(Table {
            n,
            to_dims,
            po_dims,
            to,
            po,
        })
    }

    /// Appends one tuple.
    pub fn push(&mut self, to_row: &[u32], po_row: &[u32]) {
        assert_eq!(to_row.len(), self.to_dims, "TO row width");
        assert_eq!(po_row.len(), self.po_dims, "PO row width");
        self.to.extend_from_slice(to_row);
        self.po.extend_from_slice(po_row);
        self.n += 1;
    }

    /// Number of tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True iff the table holds no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of totally ordered attributes.
    #[inline]
    pub fn to_dims(&self) -> usize {
        self.to_dims
    }

    /// Number of partially ordered attributes.
    #[inline]
    pub fn po_dims(&self) -> usize {
        self.po_dims
    }

    /// The TO coordinates of tuple `i`.
    #[inline]
    pub fn to_row(&self, i: usize) -> &[u32] {
        &self.to[i * self.to_dims..(i + 1) * self.to_dims]
    }

    /// The PO value ids of tuple `i`.
    #[inline]
    pub fn po_row(&self, i: usize) -> &[u32] {
        &self.po[i * self.po_dims..(i + 1) * self.po_dims]
    }

    /// Validates every PO value id against per-dimension domain sizes.
    pub fn check_domains(&self, sizes: &[u32]) -> Result<(), CoreError> {
        if sizes.len() != self.po_dims {
            return Err(CoreError::DomainCountMismatch {
                dags: sizes.len(),
                po_dims: self.po_dims,
            });
        }
        for i in 0..self.n {
            let row = self.po_row(i);
            for (d, (&v, &s)) in row.iter().zip(sizes.iter()).enumerate() {
                if v >= s {
                    return Err(CoreError::PoValueOutOfRange {
                        row: i,
                        dim: d,
                        value: v,
                        domain: s,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut t = Table::new(2, 1);
        t.push(&[1, 2], &[0]);
        t.push(&[3, 4], &[5]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.to_row(0), &[1, 2]);
        assert_eq!(t.to_row(1), &[3, 4]);
        assert_eq!(t.po_row(1), &[5]);
        assert_eq!((t.to_dims(), t.po_dims()), (2, 1));
    }

    #[test]
    fn from_parts_validates_shape() {
        assert!(Table::from_parts(2, 1, vec![1, 2, 3, 4], vec![0, 0]).is_ok());
        assert!(matches!(
            Table::from_parts(2, 1, vec![1, 2, 3], vec![0, 0]),
            Err(CoreError::RaggedMatrix { .. })
        ));
        assert!(matches!(
            Table::from_parts(2, 1, vec![1, 2, 3, 4], vec![0]),
            Err(CoreError::RaggedMatrix { .. })
        ));
        assert!(matches!(
            Table::from_parts(0, 0, vec![], vec![]),
            Err(CoreError::NoDimensions)
        ));
    }

    #[test]
    fn po_only_table() {
        let t = Table::from_parts(0, 2, vec![], vec![1, 2, 3, 4]).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.po_row(0), &[1, 2]);
        assert!(t.to_row(0).is_empty());
    }

    #[test]
    fn domain_check() {
        let t = Table::from_parts(1, 2, vec![5, 6], vec![0, 3, 1, 2]).unwrap();
        assert!(t.check_domains(&[2, 4]).is_ok());
        assert!(matches!(
            t.check_domains(&[2, 3]),
            Err(CoreError::PoValueOutOfRange {
                row: 0,
                dim: 1,
                value: 3,
                domain: 3
            })
        ));
        assert!(matches!(
            t.check_domains(&[2]),
            Err(CoreError::DomainCountMismatch { .. })
        ));
    }
}

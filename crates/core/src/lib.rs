//! **TSS — Topologically Sorted Skylines for Partially Ordered Domains**
//! (Sacharidis, Papadopoulos, Papadias; ICDE 2009): exact, optimally
//! progressive skyline computation when some attributes are only partially
//! ordered.
//!
//! # The problem
//!
//! Tuples have totally ordered (TO) attributes — integers, smaller is
//! better — and partially ordered (PO) attributes whose domains are DAGs
//! (`x -> y` ⟺ *x preferred over y*). `p` **dominates** `q` iff `p` is at
//! least as good on every attribute (equal-or-smaller on TO; equal-or-
//! preferred on PO) and strictly better on at least one. The skyline is the
//! set of undominated tuples.
//!
//! # The TSS idea (§III)
//!
//! 1. **Precedence** — topologically sort each PO domain and index tuples by
//!    the resulting ordinals: any dominator of `q` then has a strictly
//!    smaller L1 *mindist*, so a best-first (BBS) traversal examines
//!    dominators first and every undominated point can be emitted
//!    immediately and permanently.
//! 2. **Exactness** — label every PO value with the minimal set of
//!    `[minpost, post]` intervals covering its reachable set (spanning-tree
//!    postorder + propagation + merging). Interval containment then decides
//!    preference with neither false hits nor false misses, unlike the
//!    single-interval *m-dominance* of earlier work.
//!
//! [`Stss`] implements the static algorithm (§IV) with both optimizations of
//! §IV-B — the dyadic-range interval index and the main-memory R-tree fast
//! check — and [`Dtss`] the dynamic variant (§V), where each query supplies
//! its own partial orders and the data-resident structures are reused.
//!
//! ```
//! use poset::PartialOrderBuilder;
//! use tss_core::{Stss, StssConfig, Table};
//!
//! // Two attributes: price (TO) and airline (PO: a preferred over b).
//! let mut b = PartialOrderBuilder::new();
//! b.prefer("a", "b").unwrap();
//! let dag = b.build().unwrap();
//! let a = dag.id_of("a").unwrap().0;
//! let bb = dag.id_of("b").unwrap().0;
//!
//! let mut table = Table::new(1, 1);
//! table.push(&[100], &[bb]); // cheap, airline b
//! table.push(&[100], &[a]);  // same price, better airline -> dominates
//! table.push(&[90], &[bb]);  // cheaper, worse airline -> incomparable
//!
//! let stss = Stss::build(table, vec![dag], StssConfig::default()).unwrap();
//! let run = stss.run();
//! let mut sky = run.skyline_records();
//! sky.sort_unstable();
//! assert_eq!(sky, vec![1, 2]);
//! ```

#![forbid(unsafe_code)]

mod budget;
mod classic;
mod cursor;
mod dominance;
mod dtss;
mod error;
mod executor;
mod fastcheck;
pub mod ipc;
mod mapping;
mod metrics;
pub mod parallel;
mod progressive;
mod session;
mod store;
mod streaming;
mod stss;

pub use budget::{Budget, BudgetOutcome, BudgetedCursor};
pub use classic::{ClassicAlgo, ClassicEngine};
pub use cursor::{CursorIter, SkylineCursor, SkylineEngine};
pub use dominance::{brute_force_po_skyline, t_dominates, t_dominates_weak_printed, Dominance};
pub use dtss::{Dtss, DtssConfig, DtssCursor, DtssQueryEngine, DtssRun, PoQuery};
pub use error::{CoreError, ShardError, ShardErrorKind};
pub use fastcheck::VirtualPointIndex;
pub use ipc::{SubprocessExecutor, WorkerSpec};
pub use mapping::PoDomain;
pub use metrics::{CostModel, Metrics};
pub use parallel::{
    parallel_classic_skyline, sharded_skyline, sharded_skyline_exec, sharded_skyline_with,
    ExecPolicy, FaultKind, FaultPlan, ParallelRun, ProcessFaultKind, ShardCtx, ShardExecutor,
    ShardJob, ShardOutcome, ShardPlan, ShardSpec, ThreadShardExecutor,
};
pub use progressive::{ProgressLog, ProgressSample};
pub use session::{QuerySession, SessionStats};
pub use skyline::{Kernel, LANES};
pub use store::{PointStore, RecordId, ShardView};
pub use streaming::{StreamingConfig, StreamingCursor, StreamingSkyline, WindowPolicy};
pub use stss::{RangeStrategy, SkylinePoint, Stss, StssConfig, StssCursor, StssRun};

/// The facade name of the columnar [`PointStore`]: the paper-facing API
/// builds a `Table`, the engines consume it as the record-id-addressed
/// store it is.
pub type Table = PointStore;

use crate::{PoDomain, Table};

/// Dominance evaluator over mixed TO/PO tuples, parameterized by the
/// precomputed [`PoDomain`]s. Since the TSS labeling is exact, the
/// t-dominance it implements *is* the ground-truth Pareto dominance; the
/// separate reachability-based path exists for oracle cross-checks.
#[derive(Debug, Clone, Copy)]
pub struct Dominance<'a> {
    domains: &'a [PoDomain],
}

impl<'a> Dominance<'a> {
    /// A dominance evaluator over the given PO domains (one per PO dim).
    pub fn new(domains: &'a [PoDomain]) -> Self {
        Dominance { domains }
    }

    /// **t-dominance** (Definition 2, with the corrected condition (ii) —
    /// see DESIGN.md §1.1): `a` t-dominates `b` iff
    /// * `a.to[d] <= b.to[d]` on every TO dimension,
    /// * `a.po[d]` equals or is t-preferred over `b.po[d]` on every PO
    ///   dimension, and
    /// * at least one comparison is strict.
    #[inline]
    pub fn t_dominates(&self, to_a: &[u32], po_a: &[u32], to_b: &[u32], po_b: &[u32]) -> bool {
        t_dominates(self.domains, to_a, po_a, to_b, po_b)
    }

    /// Ground-truth dominance via the bitset transitive closure (identical
    /// to [`t_dominates`] by the exactness theorem; kept as an independent
    /// oracle).
    pub fn dominates_oracle(&self, to_a: &[u32], po_a: &[u32], to_b: &[u32], po_b: &[u32]) -> bool {
        let mut strict = false;
        for (x, y) in to_a.iter().zip(to_b.iter()) {
            if x > y {
                return false;
            }
            if x < y {
                strict = true;
            }
        }
        for (d, dom) in self.domains.iter().enumerate() {
            let (x, y) = (po_a[d], po_b[d]);
            if x == y {
                continue;
            }
            if dom.reach().preferred(poset::ValueId(x), poset::ValueId(y)) {
                strict = true;
            } else {
                return false;
            }
        }
        strict
    }
}

/// Free-function form of exact t-dominance (see [`Dominance::t_dominates`]).
///
/// This is the pair primitive of the batched kernels in
/// [`PointStore`](crate::PointStore): the TO comparison accumulates both
/// flags branch-free (no per-dimension exit — dimensionalities are small
/// and mispredictions cost more than the spare compares), and the PO loop
/// iterates the zipped triple so its bound is the hoisted `domains` length
/// — the `debug_assert`s guarantee the rows are exactly that wide, so no
/// per-pair index bounds remain.
#[inline]
pub fn t_dominates(
    domains: &[PoDomain],
    to_a: &[u32],
    po_a: &[u32],
    to_b: &[u32],
    po_b: &[u32],
) -> bool {
    debug_assert_eq!(to_a.len(), to_b.len());
    debug_assert_eq!(po_a.len(), domains.len());
    debug_assert_eq!(po_b.len(), domains.len());
    let mut le = true;
    let mut strict = false;
    for (&x, &y) in to_a.iter().zip(to_b.iter()) {
        le &= x <= y;
        strict |= x < y;
    }
    if !le {
        return false;
    }
    po_tail(domains, po_a, po_b, strict)
}

/// The PO half of [`t_dominates`], entered once the TO part is known to be
/// `<=` everywhere with strictness `to_strict`. The lane-chunked kernel in
/// [`PointStore`](crate::PointStore) resolves its TO masks per lane and
/// finishes each surviving lane through this exact tail, so both kernel
/// variants share one PO decision path.
#[inline]
pub(crate) fn po_tail(domains: &[PoDomain], po_a: &[u32], po_b: &[u32], to_strict: bool) -> bool {
    let mut strict = to_strict;
    for (dom, (&x, &y)) in domains.iter().zip(po_a.iter().zip(po_b.iter())) {
        if x == y {
            continue;
        }
        if dom.pref(x, y) {
            strict = true;
        } else {
            return false;
        }
    }
    strict
}

/// Definition 2 *as printed* in the paper: condition (ii) only requires that
/// `b` is **not** t-preferred over `a` per PO dimension, so PO-incomparable
/// pairs can still dominate through a TO dimension.
///
/// This contradicts the paper's own worked example (Table II step 6 keeps
/// `p2` although `p1` beats it on the TO attribute and is merely
/// incomparable on the PO one) and is provided only so the discrepancy can
/// be studied; see `DESIGN.md` §1.1 and the test below.
pub fn t_dominates_weak_printed(
    domains: &[PoDomain],
    to_a: &[u32],
    po_a: &[u32],
    to_b: &[u32],
    po_b: &[u32],
) -> bool {
    let mut strict = false;
    for (x, y) in to_a.iter().zip(to_b.iter()) {
        if x > y {
            return false;
        }
        if x < y {
            strict = true;
        }
    }
    for (d, dom) in domains.iter().enumerate() {
        let (x, y) = (po_a[d], po_b[d]);
        if x == y {
            continue;
        }
        if dom.pref(y, x) {
            return false; // (ii): b must not be preferred over a
        }
        if dom.pref(x, y) {
            strict = true; // (iii)(b)
        }
    }
    strict
}

/// `O(n²)` skyline oracle over a [`Table`]: record indices of all tuples not
/// dominated (ground-truth reachability dominance), in input order.
pub fn brute_force_po_skyline(domains: &[PoDomain], table: &Table) -> Vec<u32> {
    let dom = Dominance::new(domains);
    (0..table.len())
        .filter(|&i| {
            !(0..table.len()).any(|j| {
                j != i
                    && dom.dominates_oracle(
                        table.to_row(j),
                        table.po_row(j),
                        table.to_row(i),
                        table.po_row(i),
                    )
            })
        })
        .map(|i| i as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use poset::Dag;
    use proptest::prelude::*;

    fn paper_domain() -> Vec<PoDomain> {
        vec![PoDomain::new(Dag::paper_example())]
    }

    // Fig. 3(a) ids: a=0 b=1 c=2 d=3 e=4 f=5 g=6 h=7 i=8.

    #[test]
    fn table2_pairs() {
        let doms = paper_domain();
        // p1 = (2, c), p9 = (2, f): c preferred over f, same A1 -> dominates.
        assert!(t_dominates(&doms, &[2], &[2], &[2], &[5]));
        // p1 = (2, c), p2 = (3, d): incomparable PO values -> no dominance
        // despite the better TO value (the step-6 observation).
        assert!(!t_dominates(&doms, &[2], &[2], &[3], &[3]));
        assert!(!t_dominates(&doms, &[3], &[3], &[2], &[2]));
        // ... but the PRINTED Definition 2 would claim dominance, which is
        // exactly the discrepancy DESIGN.md documents:
        assert!(t_dominates_weak_printed(&doms, &[2], &[2], &[3], &[3]));
    }

    #[test]
    fn strictness_and_duplicates() {
        let doms = paper_domain();
        // Identical tuples never dominate each other.
        assert!(!t_dominates(&doms, &[5], &[2], &[5], &[2]));
        // Equal TO, strictly better PO.
        assert!(t_dominates(&doms, &[5], &[0], &[5], &[2])); // a over c
                                                             // Equal PO, strictly better TO.
        assert!(t_dominates(&doms, &[4], &[2], &[5], &[2]));
    }

    #[test]
    fn multi_po_dimension_requires_all() {
        let dag1 = Dag::paper_example();
        let dag2 = Dag::from_edges(3, &[(0, 1), (1, 2)]).unwrap(); // chain v0<v1<v2
        let doms = vec![PoDomain::new(dag1), PoDomain::new(dag2)];
        // Better on dim 1, worse on dim 2: incomparable.
        assert!(!t_dominates(&doms, &[1], &[0, 2], &[1], &[2, 0]));
        // Better on dim 1, equal on dim 2: dominates.
        assert!(t_dominates(&doms, &[1], &[0, 1], &[1], &[2, 1]));
    }

    #[test]
    fn oracle_skyline_flight_example() {
        // Table I, first order: a < b, a < c, b < d, c < d.
        let dag = Dag::from_labeled(
            ["a", "b", "c", "d"].iter().map(|s| s.to_string()).collect(),
            &[(0, 1), (0, 2), (1, 3), (2, 3)],
        )
        .unwrap();
        let doms = vec![PoDomain::new(dag)];
        let mut t = Table::new(2, 1);
        // (Price, Stops, Airline) per Fig. 1(a).
        for (pr, st, al) in [
            (1800, 0, 0), // p1 a
            (2000, 0, 0), // p2 a
            (1800, 0, 1), // p3 b
            (1200, 1, 1), // p4 b
            (1400, 1, 0), // p5 a
            (1000, 1, 1), // p6 b
            (1000, 1, 3), // p7 d
            (1800, 1, 2), // p8 c
            (500, 2, 3),  // p9 d
            (1200, 2, 2), // p10 c
        ] {
            t.push(&[pr, st], &[al]);
        }
        // Table I: skyline = {p1, p5, p6, p9, p10} (0-based: 0, 4, 5, 8, 9).
        assert_eq!(brute_force_po_skyline(&doms, &t), vec![0, 4, 5, 8, 9]);
    }

    proptest! {
        /// t-dominance coincides with the reachability oracle on random
        /// inputs (the exactness theorem, end to end).
        #[test]
        fn t_dominance_equals_oracle(
            seed in 0u64..500,
            to_a in proptest::collection::vec(0u32..5, 2),
            to_b in proptest::collection::vec(0u32..5, 2),
            pa in 0u32..9, pb in 0u32..9,
        ) {
            let _ = seed;
            let doms = paper_domain();
            let d = Dominance::new(&doms);
            prop_assert_eq!(
                t_dominates(&doms, &to_a, &[pa], &to_b, &[pb]),
                d.dominates_oracle(&to_a, &[pa], &to_b, &[pb])
            );
        }

        /// Dominance is a strict partial order: irreflexive and asymmetric.
        #[test]
        fn dominance_is_strict_order(
            to_a in proptest::collection::vec(0u32..4, 2),
            to_b in proptest::collection::vec(0u32..4, 2),
            pa in 0u32..9, pb in 0u32..9,
        ) {
            let doms = paper_domain();
            prop_assert!(!t_dominates(&doms, &to_a, &[pa], &to_a, &[pa]));
            if t_dominates(&doms, &to_a, &[pa], &to_b, &[pb]) {
                prop_assert!(!t_dominates(&doms, &to_b, &[pb], &to_a, &[pa]));
            }
        }
    }
}

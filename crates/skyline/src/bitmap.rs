use crate::store::PointBlock;
use crate::types::Stats;

/// The **Bitmap** progressive skyline algorithm (Tan, Eng, Ooi — VLDB 2001;
/// §II-A of the TSS paper).
///
/// Every dimension `d` keeps one bit-slice per distinct value `v`: slice
/// `B_d(v)` has bit `j` set iff point `j` satisfies `p_j[d] <= v` (smaller
/// is better). A point `p` is then dominated iff
///
/// ```text
/// A = ⋂_d B_d(p[d])        — points at least as good as p everywhere
/// B = ⋃_d B_d(p[d] − 1)    — points strictly better than p somewhere
/// A ∩ B ≠ {p-ish}          — some point is both
/// ```
///
/// using only bitwise operations — no pairwise comparisons at all. The
/// check for one point is independent of the others, so results stream out
/// immediately (Bitmap is progressive, the property the paper's §II-A
/// credits it with).
///
/// Space is `O(n · Σ_d |distinct values in d|)` bits, which is why Bitmap
/// suits small domains; this implementation compresses each dimension to
/// its distinct-value rank first.
pub fn bitmap(data: &PointBlock) -> (Vec<u32>, Stats) {
    let n = data.len();
    if n == 0 {
        return (Vec::new(), Stats::default());
    }
    let dims = data.dims();
    let words = n.div_ceil(64);
    let mut stats = Stats::default();

    // Rank-compress every dimension and build cumulative bit slices:
    // slices[d][r] = bitset of points with rank <= r in dimension d.
    let mut slices: Vec<Vec<Vec<u64>>> = Vec::with_capacity(dims);
    let mut ranks: Vec<Vec<usize>> = Vec::with_capacity(dims);
    for d in 0..dims {
        let mut values: Vec<u32> = (0..n).map(|j| data.coord(j, d)).collect();
        values.sort_unstable();
        values.dedup();
        let rank_of = |v: u32| values.binary_search(&v).expect("value present");
        let point_ranks: Vec<usize> = (0..n).map(|j| rank_of(data.coord(j, d))).collect();
        // Exact (per-rank) membership first …
        let mut per_rank = vec![vec![0u64; words]; values.len()];
        for (j, &r) in point_ranks.iter().enumerate() {
            per_rank[r][j / 64] |= 1u64 << (j % 64);
        }
        // … then prefix-OR to get the cumulative "at least as good" slices.
        for r in 1..values.len() {
            let (lo, hi) = per_rank.split_at_mut(r);
            for (w, prev) in hi[0].iter_mut().zip(lo[r - 1].iter()) {
                *w |= prev;
            }
        }
        slices.push(per_rank);
        ranks.push(point_ranks);
    }

    let mut skyline = Vec::new();
    let mut a = vec![0u64; words];
    let mut b = vec![0u64; words];
    for j in 0..n {
        // A := ⋂_d  cumulative slice at p's rank.
        for (w, s) in a.iter_mut().zip(slices[0][ranks[0][j]].iter()) {
            *w = *s;
        }
        for d in 1..dims {
            for (w, s) in a.iter_mut().zip(slices[d][ranks[d][j]].iter()) {
                *w &= *s;
            }
        }
        // B := ⋃_d  cumulative slice strictly below p's rank.
        for w in b.iter_mut() {
            *w = 0;
        }
        for d in 0..dims {
            if ranks[d][j] > 0 {
                for (w, s) in b.iter_mut().zip(slices[d][ranks[d][j] - 1].iter()) {
                    *w |= *s;
                }
            }
        }
        stats.dominance_checks += 1; // one bit-sliced check per point
        let dominated = a.iter().zip(b.iter()).any(|(x, y)| x & y != 0);
        if !dominated {
            skyline.push(j as u32);
        }
    }
    (skyline, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force;
    use proptest::prelude::*;

    fn sorted(mut v: Vec<u32>) -> Vec<u32> {
        v.sort_unstable();
        v
    }

    #[test]
    fn matches_oracle_small() {
        let data = PointBlock::from_rows(&[
            vec![5, 1],
            vec![1, 5],
            vec![3, 3],
            vec![4, 4],
            vec![2, 4],
            vec![3, 3],
        ]);
        let (got, stats) = bitmap(&data);
        assert_eq!(sorted(got), brute_force(&data));
        assert_eq!(stats.dominance_checks, 6, "exactly one bit check per point");
    }

    #[test]
    fn duplicates_survive() {
        // Two identical points: A∩B for each excludes the other (equal
        // everywhere means never strictly better), so both stay.
        let data = PointBlock::from_rows(&[vec![2, 2], vec![2, 2], vec![3, 3]]);
        let (got, _) = bitmap(&data);
        assert_eq!(sorted(got), vec![0, 1]);
    }

    #[test]
    fn handles_more_than_64_points() {
        let data = PointBlock::from_rows(
            &(0..200u32)
                .map(|i| vec![i % 10, (i * 7) % 13])
                .collect::<Vec<_>>(),
        );
        let (got, _) = bitmap(&data);
        assert_eq!(sorted(got), brute_force(&data));
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(bitmap(&PointBlock::new(2)).0, Vec::<u32>::new());
        assert_eq!(bitmap(&PointBlock::from_rows(&[vec![7, 7]])).0, vec![0]);
    }

    proptest! {
        #[test]
        fn equals_brute_force(
            pts in proptest::collection::vec(
                proptest::collection::vec(0u32..12, 3), 0..90),
        ) {
            let data = PointBlock::from_rows(&pts);
            let (got, _) = bitmap(&data);
            prop_assert_eq!(sorted(got), brute_force(&data));
        }
    }
}

use crate::types::{dominates, monotone_sum, Stats};

/// Sort-Filter-Skyline (Chomicki et al., §II-A): presort by a monotone
/// preference function, then a single filtering pass.
///
/// Sorting gives the *precedence* property (§III-A): a point can only be
/// dominated by points with strictly smaller sort keys (dominance implies a
/// strictly smaller coordinate sum), so every point that survives the filter
/// against the current skyline list is immediately — and permanently — a
/// skyline point. SFS is therefore optimally progressive.
///
/// Returns skyline indices in output order (ascending sum) plus [`Stats`].
pub fn sfs(data: &[Vec<u32>]) -> (Vec<u32>, Stats) {
    let mut stats = Stats::default();
    let mut order: Vec<u32> = (0..data.len() as u32).collect();
    // Stable tie-break by index keeps the output deterministic.
    order.sort_by_key(|&i| (monotone_sum(&data[i as usize]), i));
    let mut skyline: Vec<u32> = Vec::new();
    for cand in order {
        let mut dominated = false;
        for &s in &skyline {
            stats.dominance_checks += 1;
            if dominates(&data[s as usize], &data[cand as usize]) {
                dominated = true;
                break;
            }
        }
        if !dominated {
            skyline.push(cand);
        }
    }
    (skyline, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force;
    use proptest::prelude::*;

    fn sorted(mut v: Vec<u32>) -> Vec<u32> {
        v.sort_unstable();
        v
    }

    #[test]
    fn matches_oracle() {
        let data = vec![
            vec![5, 1],
            vec![1, 5],
            vec![3, 3],
            vec![4, 4],
            vec![2, 4],
            vec![3, 3],
        ];
        let (got, _) = sfs(&data);
        assert_eq!(sorted(got), brute_force(&data));
    }

    #[test]
    fn output_is_in_ascending_sum_order() {
        let data = vec![vec![9, 0], vec![0, 1], vec![5, 3], vec![0, 0]];
        let (got, _) = sfs(&data);
        let sums: Vec<u64> = got
            .iter()
            .map(|&i| monotone_sum(&data[i as usize]))
            .collect();
        assert!(sums.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn never_evicts_a_reported_point() {
        // Precedence means the list only grows; verify indirectly: every
        // reported point is in the oracle skyline.
        let data: Vec<Vec<u32>> = (0..100u32).map(|i| vec![i % 10, (i * 7) % 13]).collect();
        let (got, _) = sfs(&data);
        let oracle = brute_force(&data);
        for g in &got {
            assert!(oracle.contains(g));
        }
        assert_eq!(sorted(got), oracle);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(sfs(&[]).0, Vec::<u32>::new());
        assert_eq!(sfs(&[vec![7]]).0, vec![0]);
    }

    proptest! {
        #[test]
        fn equals_brute_force(
            pts in proptest::collection::vec(
                proptest::collection::vec(0u32..16, 2), 0..80),
        ) {
            let (got, _) = sfs(&pts);
            prop_assert_eq!(sorted(got), brute_force(&pts));
        }

        /// SFS does at most |skyline| checks per point.
        #[test]
        fn check_count_bounded(
            pts in proptest::collection::vec(
                proptest::collection::vec(0u32..12, 2), 1..60),
        ) {
            let (sky, stats) = sfs(&pts);
            prop_assert!(stats.dominance_checks <= (pts.len() as u64) * (sky.len() as u64));
        }
    }
}

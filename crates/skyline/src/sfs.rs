use crate::store::PointBlock;
use crate::types::{monotone_sum, Stats};

/// Sort-Filter-Skyline (Chomicki et al., §II-A): presort by a monotone
/// preference function, then a single filtering pass.
///
/// Sorting gives the *precedence* property (§III-A): a point can only be
/// dominated by points with strictly smaller sort keys (dominance implies a
/// strictly smaller coordinate sum), so every point that survives the filter
/// against the current skyline list is immediately — and permanently — a
/// skyline point. SFS is therefore optimally progressive.
///
/// The filter scan runs the batched columnar kernel
/// [`PointBlock::dominated_by`] over the skyline ids — one linear walk of
/// flat memory per candidate, no per-point rows.
///
/// Returns skyline indices in output order (ascending sum) plus [`Stats`].
pub fn sfs(data: &PointBlock) -> (Vec<u32>, Stats) {
    let mut cursor = SfsCursor::new(data);
    let skyline: Vec<u32> = cursor.by_ref().collect();
    (skyline, cursor.stats())
}

/// **Incremental SFS**: the filtering pass as a pull-based iterator. The
/// presort happens eagerly at construction (`O(n log n)`, no dominance
/// checks); each [`next`](Iterator::next) call then scans forward only
/// until the next survivor, so a `k`-prefix pays checks proportional to the
/// candidates actually screened — not to `n`.
pub struct SfsCursor<'a> {
    data: &'a PointBlock,
    order: Vec<u32>,
    pos: usize,
    skyline: Vec<u32>,
    stats: Stats,
}

impl<'a> SfsCursor<'a> {
    /// Presorts the input by the monotone sum (precedence order).
    pub fn new(data: &'a PointBlock) -> Self {
        let mut order: Vec<u32> = (0..data.len() as u32).collect();
        // Stable tie-break by index keeps the output deterministic.
        order.sort_by_key(|&i| (monotone_sum(data.point(i as usize)), i));
        SfsCursor {
            data,
            order,
            pos: 0,
            skyline: Vec::new(),
            stats: Stats::default(),
        }
    }

    /// Checks spent so far (final totals once exhausted).
    pub fn stats(&self) -> Stats {
        self.stats
    }
}

impl Iterator for SfsCursor<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        while let Some(&cand) = self.order.get(self.pos) {
            self.pos += 1;
            let (dominated, examined) = self
                .data
                .dominated_by(&self.skyline, self.data.point(cand as usize));
            self.stats.batch(examined);
            if !dominated {
                self.skyline.push(cand);
                return Some(cand);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force;
    use proptest::prelude::*;

    fn sorted(mut v: Vec<u32>) -> Vec<u32> {
        v.sort_unstable();
        v
    }

    #[test]
    fn matches_oracle() {
        let data = PointBlock::from_rows(&[
            vec![5, 1],
            vec![1, 5],
            vec![3, 3],
            vec![4, 4],
            vec![2, 4],
            vec![3, 3],
        ]);
        let (got, stats) = sfs(&data);
        assert_eq!(sorted(got), brute_force(&data));
        assert!(stats.dominance_batch_calls >= data.len() as u64);
    }

    #[test]
    fn output_is_in_ascending_sum_order() {
        let data = PointBlock::from_rows(&[vec![9, 0], vec![0, 1], vec![5, 3], vec![0, 0]]);
        let (got, _) = sfs(&data);
        let sums: Vec<u64> = got
            .iter()
            .map(|&i| monotone_sum(data.point(i as usize)))
            .collect();
        assert!(sums.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn never_evicts_a_reported_point() {
        // Precedence means the list only grows; verify indirectly: every
        // reported point is in the oracle skyline.
        let data = PointBlock::from_rows(
            &(0..100u32)
                .map(|i| vec![i % 10, (i * 7) % 13])
                .collect::<Vec<_>>(),
        );
        let (got, _) = sfs(&data);
        let oracle = brute_force(&data);
        for g in &got {
            assert!(oracle.contains(g));
        }
        assert_eq!(sorted(got), oracle);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(sfs(&PointBlock::new(1)).0, Vec::<u32>::new());
        assert_eq!(sfs(&PointBlock::from_rows(&[vec![7]])).0, vec![0]);
    }

    #[test]
    fn cursor_prefix_spends_fewer_checks() {
        let data =
            PointBlock::from_rows(&(0..200u32).map(|i| vec![i, 199 - i]).collect::<Vec<_>>());
        let (full, full_stats) = sfs(&data);
        assert!(full.len() > 3);
        let mut c = SfsCursor::new(&data);
        let prefix: Vec<u32> = c.by_ref().take(3).collect();
        assert_eq!(prefix, full[..3]);
        assert!(c.stats().dominance_checks < full_stats.dominance_checks);
        let rest: Vec<u32> = c.collect();
        assert_eq!([prefix, rest].concat(), full);
    }

    proptest! {
        #[test]
        fn equals_brute_force(
            pts in proptest::collection::vec(
                proptest::collection::vec(0u32..16, 2), 0..80),
        ) {
            let data = PointBlock::from_rows(&pts);
            let (got, _) = sfs(&data);
            prop_assert_eq!(sorted(got), brute_force(&data));
        }

        /// SFS does at most |skyline| checks per point.
        #[test]
        fn check_count_bounded(
            pts in proptest::collection::vec(
                proptest::collection::vec(0u32..12, 2), 1..60),
        ) {
            let data = PointBlock::from_rows(&pts);
            let (sky, stats) = sfs(&data);
            prop_assert!(stats.dominance_checks <= (pts.len() as u64) * (sky.len() as u64));
        }
    }
}

use crate::store::PointBlock;
use crate::types::Stats;

/// The **Index** progressive skyline algorithm (Tan, Eng, Ooi — VLDB 2001;
/// §II-A of the TSS paper, one of the two algorithms the paper credits with
/// the *precedence* property alongside BBS).
///
/// Points are partitioned into `d` lists: point `p` goes to the list of the
/// dimension holding its minimum coordinate `minC(p)` (ties to the lowest
/// dimension index), and each list is sorted by `minC`. Processing merges
/// the lists in ascending `minC`. Precedence holds because a dominator `q`
/// of `p` satisfies `minC(q) <= minC(p)` (coordinate-wise dominance bounds
/// the minimum), and ties are broken by the coordinate sum, strictly smaller
/// for a dominator — so every point can be confirmed against the running
/// skyline list the moment it is scanned, via the batched columnar kernel
/// [`PointBlock::dominated_by`].
///
/// Early termination: once the smallest unprocessed `minC` across all lists
/// strictly exceeds the smallest `max`-coordinate of any skyline point
/// found so far, that skyline point strictly dominates everything left.
///
/// (The original's in-list pruning batches entries per distinct `minC`;
/// this implementation keeps the one-at-a-time formulation, which has the
/// same precedence and termination structure and is simpler to verify.)
pub fn index_skyline(data: &PointBlock) -> (Vec<u32>, Stats) {
    let mut stats = Stats::default();
    if data.is_empty() {
        return (Vec::new(), stats);
    }
    let dims = data.dims();
    let min_c = |p: &[u32]| p.iter().copied().min().unwrap_or(0);
    let max_c = |p: &[u32]| p.iter().copied().max().unwrap_or(0);
    let sum = |p: &[u32]| p.iter().map(|&c| c as u64).sum::<u64>();

    // Build the d lists.
    let mut lists: Vec<Vec<u32>> = vec![Vec::new(); dims];
    for j in 0..data.len() {
        let p = data.point(j);
        let (dim, _) = p
            .iter()
            .enumerate()
            .min_by_key(|&(_, &v)| v)
            .expect("non-empty point");
        lists[dim].push(j as u32);
    }
    for list in &mut lists {
        list.sort_by_key(|&j| {
            let p = data.point(j as usize);
            (min_c(p), sum(p), j)
        });
    }

    // Merge the list heads in ascending (minC, sum).
    let mut cursors = vec![0usize; dims];
    let mut skyline: Vec<u32> = Vec::new();
    let mut best_max: Option<u32> = None;
    loop {
        let mut next: Option<(u32, u64, usize)> = None; // (minC, sum, list)
        for (d, list) in lists.iter().enumerate() {
            if let Some(&j) = list.get(cursors[d]) {
                let p = data.point(j as usize);
                let key = (min_c(p), sum(p), d);
                if next.is_none_or(|(m, s, _)| (key.0, key.1) < (m, s)) {
                    next = Some((key.0, key.1, d));
                }
            }
        }
        let Some((mc, _, d)) = next else { break };
        if let Some(stop) = best_max {
            if mc > stop {
                break; // everything left is strictly dominated
            }
        }
        let j = lists[d][cursors[d]];
        cursors[d] += 1;
        let p = data.point(j as usize);
        let (dominated, examined) = data.dominated_by(&skyline, p);
        stats.batch(examined);
        if !dominated {
            let m = max_c(p);
            best_max = Some(best_max.map_or(m, |b| b.min(m)));
            skyline.push(j);
        }
    }
    (skyline, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force;
    use proptest::prelude::*;

    fn sorted(mut v: Vec<u32>) -> Vec<u32> {
        v.sort_unstable();
        v
    }

    #[test]
    fn matches_oracle_small() {
        let data = PointBlock::from_rows(&[
            vec![5, 1],
            vec![1, 5],
            vec![3, 3],
            vec![4, 4],
            vec![0, 9],
            vec![9, 0],
        ]);
        let (got, _) = index_skyline(&data);
        assert_eq!(sorted(got), brute_force(&data));
    }

    #[test]
    fn early_termination_fires() {
        let mut rows = vec![vec![1u32, 1]];
        for i in 0..400u32 {
            rows.push(vec![50 + i % 20, 50 + i % 31]);
        }
        let data = PointBlock::from_rows(&rows);
        let (got, stats) = index_skyline(&data);
        assert_eq!(got, vec![0]);
        // Without termination we would pay ~400 checks.
        assert!(stats.dominance_checks < 10, "{}", stats.dominance_checks);
    }

    #[test]
    fn emission_is_progressive_in_minc_order() {
        let data = PointBlock::from_rows(&(0..60u32).map(|i| vec![i, 59 - i]).collect::<Vec<_>>());
        let (got, _) = index_skyline(&data);
        let mcs: Vec<u32> = got
            .iter()
            .map(|&j| *data.point(j as usize).iter().min().unwrap())
            .collect();
        assert!(mcs.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(sorted(got), brute_force(&data));
    }

    #[test]
    fn duplicates_survive() {
        let data = PointBlock::from_rows(&[vec![3, 3], vec![3, 3]]);
        let (got, _) = index_skyline(&data);
        assert_eq!(sorted(got), vec![0, 1]);
    }

    #[test]
    fn empty_input() {
        assert_eq!(index_skyline(&PointBlock::new(2)).0, Vec::<u32>::new());
    }

    proptest! {
        #[test]
        fn equals_brute_force(
            pts in proptest::collection::vec(
                proptest::collection::vec(0u32..14, 3), 0..80),
        ) {
            let data = PointBlock::from_rows(&pts);
            let (got, _) = index_skyline(&data);
            prop_assert_eq!(sorted(got), brute_force(&data));
        }
    }
}

//! The columnar point layout every engine in the workspace computes on: a
//! single flat `Vec<u32>` with a fixed stride, indexed by `u32` record ids.
//!
//! Per-point `Vec<u32>` rows (the seed layout) cost one heap allocation and
//! one pointer chase per point; on the window/presort hot loops that — not
//! the comparison work — dominates the CPU side of the paper's cost model.
//! A [`PointBlock`] stores all coordinates contiguously, so a dominance
//! scan over a candidate list walks memory linearly, and the batched
//! kernels below test one candidate against a whole block of points with a
//! branch-free inner comparison and early exit across rows.
//!
//! Counting convention: every kernel returns `(answer, pairs_examined)`.
//! One *examined pair* is exactly one scalar dominance check of the seed
//! implementation — early exit means the batched count is never larger
//! than the scalar loop's on the same inputs. Callers fold the pair count
//! into `dominance_checks` and bump `dominance_batch_calls` once per kernel
//! invocation (see [`Stats::batch`](crate::Stats::batch)).

/// A flat, fixed-stride block of points: `data[i*dims .. (i+1)*dims]` are
/// the coordinates of point `i`. Zero per-point allocations; `O(1)` slice
/// access by record id.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PointBlock {
    dims: usize,
    data: Vec<u32>,
}

/// Branch-free pair check: `row` dominates `cand` iff `row <= cand`
/// everywhere and `row < cand` somewhere. Both flags accumulate without
/// per-dimension branching (dimensionalities are small; mispredicted exits
/// cost more than the spare compares).
#[inline]
pub(crate) fn row_dominates(row: &[u32], cand: &[u32]) -> bool {
    let mut le = true;
    let mut lt = false;
    for (&a, &b) in row.iter().zip(cand.iter()) {
        le &= a <= b;
        lt |= a < b;
    }
    le & lt
}

/// Branch-free weak pair check: `row <= cand` on every dimension.
#[inline]
pub(crate) fn row_dominates_or_equal(row: &[u32], cand: &[u32]) -> bool {
    let mut le = true;
    for (&a, &b) in row.iter().zip(cand.iter()) {
        le &= a <= b;
    }
    le
}

impl PointBlock {
    /// An empty block of `dims`-dimensional points.
    pub fn new(dims: usize) -> Self {
        PointBlock {
            dims,
            data: Vec::new(),
        }
    }

    /// An empty block with room for `points` points.
    pub fn with_capacity(dims: usize, points: usize) -> Self {
        PointBlock {
            dims,
            data: Vec::with_capacity(dims * points),
        }
    }

    /// Wraps an already-flattened row-major matrix (`data.len()` must be a
    /// multiple of `dims`).
    pub fn from_flat(dims: usize, data: Vec<u32>) -> Self {
        assert!(dims > 0, "points need at least one dimension");
        assert_eq!(data.len() % dims, 0, "flat data must be a whole matrix");
        PointBlock { dims, data }
    }

    /// Copies per-point rows into a fresh block (test and ingestion
    /// convenience — the hot paths never materialize rows).
    pub fn from_rows(rows: &[Vec<u32>]) -> Self {
        let dims = rows.first().map_or(1, Vec::len);
        let mut b = PointBlock::with_capacity(dims, rows.len());
        for r in rows {
            b.push(r);
        }
        b
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dims
    }

    /// True iff the block holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Point dimensionality (the stride).
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The coordinates of point `i`.
    #[inline]
    pub fn point(&self, i: usize) -> &[u32] {
        &self.data[i * self.dims..(i + 1) * self.dims]
    }

    /// Coordinate `d` of point `i`.
    #[inline]
    pub fn coord(&self, i: usize, d: usize) -> u32 {
        self.data[i * self.dims + d]
    }

    /// Appends one point.
    #[inline]
    pub fn push(&mut self, coords: &[u32]) {
        assert_eq!(coords.len(), self.dims, "point width");
        self.data.extend_from_slice(coords);
    }

    /// Removes all points, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Moves all points of `other` (same stride) to the end of this block.
    pub fn append(&mut self, other: &mut PointBlock) {
        assert_eq!(self.dims, other.dims, "stride mismatch");
        self.data.append(&mut other.data);
    }

    /// Iterates over the points in record order.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> {
        self.data.chunks_exact(self.dims)
    }

    /// The whole flat coordinate matrix (row-major).
    #[inline]
    pub fn flat(&self) -> &[u32] {
        &self.data
    }

    /// Keeps only the points whose `(index, coords)` satisfy `keep`,
    /// compacting in place and preserving order. `ids` is a parallel vector
    /// (one entry per point) compacted identically.
    pub fn retain_with_ids(
        &mut self,
        ids: &mut Vec<u32>,
        mut keep: impl FnMut(u32, &[u32]) -> bool,
    ) {
        debug_assert_eq!(ids.len(), self.len());
        let dims = self.dims;
        let mut write = 0usize;
        for read in 0..ids.len() {
            let start = read * dims;
            let ok = keep(ids[read], &self.data[start..start + dims]);
            if ok {
                if write != read {
                    ids[write] = ids[read];
                    self.data.copy_within(start..start + dims, write * dims);
                }
                write += 1;
            }
        }
        ids.truncate(write);
        self.data.truncate(write * dims);
    }

    // --- Batched dominance kernels --------------------------------------

    /// Does any point of the block strictly dominate `cand`? Scans all rows
    /// in record order with early exit. Returns `(dominated,
    /// pairs_examined)`.
    #[inline]
    pub fn dominated(&self, cand: &[u32]) -> (bool, u64) {
        debug_assert_eq!(cand.len(), self.dims);
        let mut examined = 0u64;
        for row in self.data.chunks_exact(self.dims) {
            examined += 1;
            if row_dominates(row, cand) {
                return (true, examined);
            }
        }
        (false, examined)
    }

    /// Does any of the listed points strictly dominate `cand`? `ids` index
    /// into this block. Returns `(dominated, pairs_examined)`.
    #[inline]
    pub fn dominated_by(&self, ids: &[u32], cand: &[u32]) -> (bool, u64) {
        debug_assert_eq!(cand.len(), self.dims);
        let dims = self.dims;
        let mut examined = 0u64;
        for &id in ids {
            examined += 1;
            let base = id as usize * dims;
            if row_dominates(&self.data[base..base + dims], cand) {
                return (true, examined);
            }
        }
        (false, examined)
    }

    /// Corner pruning: is some point `<=` the MBB corner on every dimension
    /// *and* different from it? (The strict-corner rule that keeps exact
    /// duplicates of skyline points alive — see `bbs.rs`.) Scans all rows.
    #[inline]
    pub fn corner_pruned(&self, corner: &[u32]) -> (bool, u64) {
        debug_assert_eq!(corner.len(), self.dims);
        let mut examined = 0u64;
        for row in self.data.chunks_exact(self.dims) {
            examined += 1;
            if row_dominates_or_equal(row, corner) && row != corner {
                return (true, examined);
            }
        }
        (false, examined)
    }

    /// The strictness-precomputed variant for same-key groups: each entry
    /// is `(point index, strict_elsewhere)`, where `strict_elsewhere`
    /// records that the entry already beats the candidate strictly on some
    /// dimension *outside* this block (e.g. a partially ordered attribute
    /// shared group-wide). The entry then dominates iff its coordinates are
    /// `<=` the candidate everywhere and, when not strict elsewhere, differ
    /// from it somewhere.
    #[inline]
    pub fn dominated_with_strictness(&self, entries: &[(u32, bool)], cand: &[u32]) -> (bool, u64) {
        debug_assert_eq!(cand.len(), self.dims);
        let dims = self.dims;
        let mut examined = 0u64;
        for &(id, strict) in entries {
            examined += 1;
            let base = id as usize * dims;
            let row = &self.data[base..base + dims];
            if row_dominates_or_equal(row, cand) && (strict || row != cand) {
                return (true, examined);
            }
        }
        (false, examined)
    }
}

impl From<Vec<Vec<u32>>> for PointBlock {
    fn from(rows: Vec<Vec<u32>>) -> Self {
        PointBlock::from_rows(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::dominates;
    use proptest::prelude::*;

    #[test]
    fn layout_round_trips() {
        let mut b = PointBlock::new(2);
        b.push(&[1, 2]);
        b.push(&[3, 4]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.point(0), &[1, 2]);
        assert_eq!(b.point(1), &[3, 4]);
        assert_eq!(b.coord(1, 0), 3);
        assert_eq!(b.flat(), &[1, 2, 3, 4]);
        let again = PointBlock::from_flat(2, b.flat().to_vec());
        assert_eq!(again, b);
        assert_eq!(b.iter().count(), 2);
    }

    #[test]
    fn kernels_agree_with_scalar_checks() {
        let b = PointBlock::from_rows(&[vec![2, 2], vec![5, 1], vec![3, 3]]);
        // (3,3) is dominated by (2,2) — found after one examined pair.
        assert_eq!(b.dominated(&[3, 3]), (true, 1));
        // (1,1) is dominated by nobody; all three rows examined.
        assert_eq!(b.dominated(&[1, 1]), (false, 3));
        // Duplicates never dominate.
        assert!(!b.dominated(&[2, 2]).0);
        // id-restricted scan skips unlisted dominators.
        assert!(!b.dominated_by(&[1], &[3, 3]).0);
        assert_eq!(b.dominated_by(&[1, 0], &[3, 3]), (true, 2));
    }

    #[test]
    fn corner_rule_spares_exact_duplicates() {
        let b = PointBlock::from_rows(&[vec![2, 2]]);
        assert!(b.corner_pruned(&[3, 3]).0);
        assert!(!b.corner_pruned(&[2, 2]).0, "equal corner must survive");
        assert!(!b.corner_pruned(&[1, 4]).0);
    }

    #[test]
    fn strictness_variant_matches_semantics() {
        let b = PointBlock::from_rows(&[vec![2, 2], vec![4, 4]]);
        // Equal coordinates dominate only when strict elsewhere.
        assert!(!b.dominated_with_strictness(&[(0, false)], &[2, 2]).0);
        assert!(b.dominated_with_strictness(&[(0, true)], &[2, 2]).0);
        // Strictly better coordinates dominate either way.
        assert!(b.dominated_with_strictness(&[(0, false)], &[3, 3]).0);
        // Worse coordinates never do.
        assert!(!b.dominated_with_strictness(&[(1, true)], &[3, 3]).0);
    }

    #[test]
    fn retain_compacts_in_order() {
        let mut b = PointBlock::from_rows(&[vec![1, 1], vec![2, 2], vec![3, 3], vec![4, 4]]);
        let mut ids = vec![10, 20, 30, 40];
        b.retain_with_ids(&mut ids, |id, row| id != 20 && row[0] != 4);
        assert_eq!(ids, vec![10, 30]);
        assert_eq!(b.point(0), &[1, 1]);
        assert_eq!(b.point(1), &[3, 3]);
        assert_eq!(b.len(), 2);
    }

    proptest! {
        /// The batched kernel agrees with the scalar `dominates` loop and
        /// never examines more pairs than the scalar early-exit scan.
        #[test]
        fn batched_equals_scalar_loop(
            rows in proptest::collection::vec(
                proptest::collection::vec(0u32..6, 3), 1..40),
            cand in proptest::collection::vec(0u32..6, 3),
        ) {
            let b = PointBlock::from_rows(&rows);
            let (got, examined) = b.dominated(&cand);
            let mut scalar = 0u64;
            let mut expect = false;
            for r in &rows {
                scalar += 1;
                if dominates(r, &cand) { expect = true; break; }
            }
            prop_assert_eq!(got, expect);
            prop_assert_eq!(examined, scalar);
        }
    }
}

//! The columnar point layout every engine in the workspace computes on: a
//! single flat `Vec<u32>` with a fixed stride, indexed by `u32` record ids.
//!
//! Per-point `Vec<u32>` rows (the seed layout) cost one heap allocation and
//! one pointer chase per point; on the window/presort hot loops that — not
//! the comparison work — dominates the CPU side of the paper's cost model.
//! A [`PointBlock`] stores all coordinates contiguously, so a dominance
//! scan over a candidate list walks memory linearly, and the batched
//! kernels below test one candidate against a whole block of points with a
//! branch-free inner comparison and early exit across rows.
//!
//! # Lane-chunked kernels and the SoA mirror
//!
//! Each batched kernel exists in two variants behind one signature,
//! selected by [`Kernel`]:
//!
//! * **scalar** — the seed row-major loop, kept as the oracle path;
//! * **lanes** — compares [`LANES`] rows per iteration against the
//!   candidate with `[u32; LANES]` accumulator masks (`le`/`lt` per lane)
//!   that stable rustc autovectorizes, a movemask-style any-lane test for
//!   early exit at chunk granularity, and first-set-lane resolution in
//!   record order so the hit row — and therefore the examined-pair count —
//!   is exactly the scalar loop's.
//!
//! The full-block scans read a **dimension-major (structure-of-arrays)
//! mirror** maintained alongside the row-major matrix:
//! `soa[(chunk * dims + d) * LANES + lane]` holds dimension `d` of point
//! `chunk * LANES + lane`, so one chunk's per-dimension column is
//! contiguous. Tail lanes past `len` are padded with `u32::MAX`, which can
//! tie a candidate on every dimension but never beat it strictly — a pad
//! lane's `lt` mask is always zero, so pads can never report dominance.
//! The id-gather kernels transpose each group of [`LANES`] listed rows
//! into a stack scratch instead (ids are arbitrary, so no mirror window
//! applies).
//!
//! Counting convention: every kernel returns `(answer, pairs_examined)`.
//! One *examined pair* is exactly one scalar dominance check of the seed
//! implementation — early exit means the batched count is never larger
//! than the scalar loop's, and the two kernel variants count identically
//! on every input. Callers fold the pair count into `dominance_checks`
//! and bump `dominance_batch_calls` once per kernel invocation (see
//! [`Stats::batch`](crate::Stats::batch)).

use std::sync::OnceLock;

/// Rows compared per lane-chunked kernel iteration. Eight `u32` lanes fill
/// one 256-bit vector register (AVX2) and two 128-bit ones (SSE/NEON), the
/// widths stable rustc reliably autovectorizes the accumulator loops to.
pub const LANES: usize = 8;

/// Widest stride the id-gather lane kernels transpose through their stack
/// scratch; wider blocks take the scalar path (the workloads in this repo
/// top out at 16 attributes).
const LANE_MAX_DIMS: usize = 16;

/// Which dominance-kernel variant a [`PointBlock`] (or
/// `tss_core::PointStore`) dispatches to. Both variants are byte-identical
/// in results *and* examined-pair counts; `Scalar` is the oracle path,
/// `Lanes` the autovectorized one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// The seed row-major scalar loops.
    Scalar,
    /// [`LANES`]-wide chunked compares over the SoA mirror / gathered
    /// groups.
    Lanes,
}

impl Kernel {
    /// The process-wide default variant: `TSS_KERNEL=scalar` forces the
    /// oracle path, anything else (including unset) selects `Lanes`. Read
    /// once per process; per-instance overrides go through
    /// [`PointBlock::with_kernel`].
    pub fn active() -> Kernel {
        static ACTIVE: OnceLock<Kernel> = OnceLock::new();
        *ACTIVE.get_or_init(|| match std::env::var("TSS_KERNEL") {
            Ok(v) if v.eq_ignore_ascii_case("scalar") => Kernel::Scalar,
            _ => Kernel::Lanes,
        })
    }

    /// Stable lowercase name (`"scalar"` / `"lanes"`), as spelled in
    /// `TSS_KERNEL` and bench-row JSON.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Lanes => "lanes",
        }
    }
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel::active()
    }
}

/// A flat, fixed-stride block of points: `data[i*dims .. (i+1)*dims]` are
/// the coordinates of point `i`. Zero per-point allocations; `O(1)` slice
/// access by record id. Alongside the row-major matrix the block maintains
/// the dimension-major mirror the lane-chunked kernels scan (see the
/// module docs); equality compares the logical contents only (`dims` +
/// row-major data), not the mirror or the configured [`Kernel`].
/// Like `tss_core::PointStore`, the block carries an **epoch-versioned
/// mutable form**: every mutation bumps a [`generation`](Self::generation)
/// counter, [`expire`](Self::expire) retires a row into a tombstone bitmap
/// without moving data, and [`compact`](Self::compact) rewrites the matrix
/// densely (rebuilding the SoA mirror). The full-block and id-gather
/// kernels keep scanning *physical* rows — streaming callers pass live id
/// lists — so the lane machinery needs no liveness branches.
#[derive(Debug, Clone, Default)]
pub struct PointBlock {
    dims: usize,
    data: Vec<u32>,
    /// Dimension-major mirror: `soa[(chunk*dims + d)*LANES + lane]` =
    /// coordinate `d` of point `chunk*LANES + lane`; tail lanes hold
    /// `u32::MAX` pads.
    soa: Vec<u32>,
    kernel: Kernel,
    /// Tombstone bitmap, one bit per physical row; may be shorter than
    /// `len.div_ceil(64)` words — missing bits mean live.
    tombstones: Vec<u64>,
    /// Tombstoned rows (`len() - dead` rows are live).
    dead: usize,
    /// Epoch counter: bumped by every mutation.
    generation: u64,
}

impl PartialEq for PointBlock {
    fn eq(&self, other: &Self) -> bool {
        self.dims == other.dims && self.data == other.data
    }
}

impl Eq for PointBlock {}

/// Branch-free pair check: `row` dominates `cand` iff `row <= cand`
/// everywhere and `row < cand` somewhere. Both flags accumulate without
/// per-dimension branching (dimensionalities are small; mispredicted exits
/// cost more than the spare compares).
#[inline]
pub(crate) fn row_dominates(row: &[u32], cand: &[u32]) -> bool {
    let mut le = true;
    let mut lt = false;
    for (&a, &b) in row.iter().zip(cand.iter()) {
        le &= a <= b;
        lt |= a < b;
    }
    le & lt
}

impl PointBlock {
    /// An empty block of `dims`-dimensional points.
    pub fn new(dims: usize) -> Self {
        PointBlock {
            dims,
            data: Vec::new(),
            soa: Vec::new(),
            kernel: Kernel::default(),
            tombstones: Vec::new(),
            dead: 0,
            generation: 0,
        }
    }

    /// An empty block with room for `points` points.
    pub fn with_capacity(dims: usize, points: usize) -> Self {
        PointBlock {
            dims,
            data: Vec::with_capacity(dims * points),
            soa: Vec::with_capacity(points.div_ceil(LANES) * LANES * dims),
            kernel: Kernel::default(),
            tombstones: Vec::new(),
            dead: 0,
            generation: 0,
        }
    }

    /// Wraps an already-flattened row-major matrix (`data.len()` must be a
    /// multiple of `dims`).
    pub fn from_flat(dims: usize, data: Vec<u32>) -> Self {
        assert!(dims > 0, "points need at least one dimension");
        assert_eq!(data.len() % dims, 0, "flat data must be a whole matrix");
        let mut b = PointBlock {
            dims,
            data,
            soa: Vec::new(),
            kernel: Kernel::default(),
            tombstones: Vec::new(),
            dead: 0,
            generation: 0,
        };
        b.rebuild_soa();
        b
    }

    /// Copies per-point rows into a fresh block (test and ingestion
    /// convenience — the hot paths never materialize rows).
    pub fn from_rows(rows: &[Vec<u32>]) -> Self {
        let dims = rows.first().map_or(1, Vec::len);
        let mut b = PointBlock::with_capacity(dims, rows.len());
        for r in rows {
            b.push(r);
        }
        b
    }

    /// The dominance-kernel variant this block dispatches to.
    #[inline]
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Returns the block with the given kernel variant forced (tests and
    /// the bench harness's in-process scalar-vs-lanes cross-checks).
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Forces the kernel variant in place.
    pub fn set_kernel(&mut self, kernel: Kernel) {
        self.kernel = kernel;
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dims
    }

    /// True iff the block holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Point dimensionality (the stride).
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The coordinates of point `i`.
    #[inline]
    pub fn point(&self, i: usize) -> &[u32] {
        &self.data[i * self.dims..(i + 1) * self.dims]
    }

    /// Coordinate `d` of point `i`.
    #[inline]
    pub fn coord(&self, i: usize, d: usize) -> u32 {
        self.data[i * self.dims + d]
    }

    /// One bounds check per row instead of two: split the flat matrix at
    /// the row start, then take the stride window off the tail.
    #[inline]
    fn row(&self, id: u32) -> &[u32] {
        let (_, tail) = self.data.split_at(id as usize * self.dims);
        &tail[..self.dims]
    }

    /// Appends one point.
    #[inline]
    pub fn push(&mut self, coords: &[u32]) {
        assert_eq!(coords.len(), self.dims, "point width");
        self.data.extend_from_slice(coords);
        self.generation += 1;
        if self.dims == 0 {
            return;
        }
        let i = self.len() - 1;
        let (chunk, lane) = (i / LANES, i % LANES);
        if lane == 0 {
            // New chunk: open it fully padded, then fill lane 0.
            self.soa
                .resize(self.soa.len() + self.dims * LANES, u32::MAX);
        }
        for (d, &c) in coords.iter().enumerate() {
            self.soa[(chunk * self.dims + d) * LANES + lane] = c;
        }
    }

    /// Removes all points, keeping the allocations.
    pub fn clear(&mut self) {
        self.data.clear();
        self.soa.clear();
        self.tombstones.clear();
        self.dead = 0;
        self.generation += 1;
    }

    /// Moves all points of `other` (same stride) to the end of this block.
    /// `other` must carry no tombstones (compact it first): row indices
    /// shift on append, and silently re-basing other's tombstone bits
    /// would retire the wrong rows.
    pub fn append(&mut self, other: &mut PointBlock) {
        assert_eq!(self.dims, other.dims, "stride mismatch");
        assert_eq!(other.dead, 0, "append: compact `other` first");
        self.data.append(&mut other.data);
        other.soa.clear();
        other.generation += 1;
        self.generation += 1;
        self.rebuild_soa();
    }

    /// Iterates over the points in record order.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> {
        self.data.chunks_exact(self.dims)
    }

    /// The whole flat coordinate matrix (row-major).
    #[inline]
    pub fn flat(&self) -> &[u32] {
        &self.data
    }

    /// Keeps only the points whose `(index, coords)` satisfy `keep`,
    /// compacting in place and preserving order. `ids` is a parallel vector
    /// (one entry per point) compacted identically.
    pub fn retain_with_ids(
        &mut self,
        ids: &mut Vec<u32>,
        mut keep: impl FnMut(u32, &[u32]) -> bool,
    ) {
        debug_assert_eq!(ids.len(), self.len());
        assert_eq!(self.dead, 0, "retain_with_ids: compact tombstones first");
        self.generation += 1;
        let dims = self.dims;
        let mut write = 0usize;
        for read in 0..ids.len() {
            let start = read * dims;
            let ok = keep(ids[read], &self.data[start..start + dims]);
            if ok {
                if write != read {
                    ids[write] = ids[read];
                    self.data.copy_within(start..start + dims, write * dims);
                }
                write += 1;
            }
        }
        ids.truncate(write);
        self.data.truncate(write * dims);
        self.rebuild_soa();
    }

    // --- Epoch-versioned mutation ---------------------------------------

    /// Word index and mask of one row's tombstone bit.
    #[inline]
    fn tomb_bit(i: usize) -> (usize, u64) {
        (i / 64, 1u64 << (i % 64))
    }

    /// The epoch counter: bumped by every mutation (push, clear, append,
    /// retain, expire, compact). Equal generations imply byte-identical
    /// logical contents.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// True iff physical row `i` has not been tombstoned.
    #[inline]
    pub fn is_live(&self, i: usize) -> bool {
        debug_assert!(i < self.len());
        let (w, m) = Self::tomb_bit(i);
        self.tombstones.get(w).is_none_or(|&x| x & m == 0)
    }

    /// Number of live (non-tombstoned) rows; [`len`](Self::len) keeps
    /// counting physical rows until [`compact`](Self::compact).
    #[inline]
    pub fn live_len(&self) -> usize {
        self.len() - self.dead
    }

    /// Retires row `i` into the tombstone bitmap without touching the
    /// matrix or the SoA mirror. Returns `true` (and bumps the generation)
    /// iff the row was live.
    pub fn expire(&mut self, i: usize) -> bool {
        assert!(i < self.len(), "expire: row {i} out of range");
        let (w, m) = Self::tomb_bit(i);
        if self.tombstones.len() <= w {
            self.tombstones.resize(w + 1, 0);
        }
        if self.tombstones[w] & m != 0 {
            return false;
        }
        self.tombstones[w] |= m;
        self.dead += 1;
        self.generation += 1;
        true
    }

    /// Drops tombstoned rows, compacting in place (order preserved) and
    /// rebuilding the SoA mirror. Returns the surviving *old* row indices
    /// in ascending order (survivor `i` is the new row `i`).
    pub fn compact(&mut self) -> Vec<u32> {
        let dims = self.dims;
        let mut survivors = Vec::with_capacity(self.live_len());
        let mut w = 0usize;
        for r in 0..self.len() {
            if !self.is_live(r) {
                continue;
            }
            if w != r {
                self.data.copy_within(r * dims..(r + 1) * dims, w * dims);
            }
            survivors.push(r as u32);
            w += 1;
        }
        self.data.truncate(w * dims);
        self.dead = 0;
        self.tombstones.clear();
        self.generation += 1;
        self.rebuild_soa();
        survivors
    }

    /// Re-derives the dimension-major mirror from the row-major matrix
    /// (bulk mutations; `push` maintains it incrementally).
    fn rebuild_soa(&mut self) {
        let dims = self.dims;
        if dims == 0 {
            self.soa.clear();
            return;
        }
        let n = self.len();
        self.soa.clear();
        self.soa.resize(n.div_ceil(LANES) * dims * LANES, u32::MAX);
        for (i, row) in self.data.chunks_exact(dims).enumerate() {
            let (chunk, lane) = (i / LANES, i % LANES);
            for (d, &c) in row.iter().enumerate() {
                self.soa[(chunk * dims + d) * LANES + lane] = c;
            }
        }
    }

    // --- Batched dominance kernels --------------------------------------

    /// Does any point of the block strictly dominate `cand`? Scans all rows
    /// in record order with early exit. Returns `(dominated,
    /// pairs_examined)`.
    #[inline]
    pub fn dominated(&self, cand: &[u32]) -> (bool, u64) {
        debug_assert_eq!(cand.len(), self.dims);
        match self.kernel {
            Kernel::Scalar => self.dominated_scalar(cand),
            Kernel::Lanes => self.dominated_lanes(cand),
        }
    }

    fn dominated_scalar(&self, cand: &[u32]) -> (bool, u64) {
        let mut examined = 0u64;
        for row in self.data.chunks_exact(self.dims) {
            examined += 1;
            if row_dominates(row, cand) {
                return (true, examined);
            }
        }
        (false, examined)
    }

    /// Full-block lane scan over the SoA mirror: one contiguous
    /// per-dimension column load per chunk, `le`/`lt` masks across
    /// [`LANES`] rows, any-lane early exit, first-set-lane resolution in
    /// record order. Pad lanes (`u32::MAX` everywhere) can never set `lt`,
    /// so they never report dominance. Past 4 dimensions the column loop
    /// bails once every lane's `le` is dead — dead `le` can never revive,
    /// so the skip is invisible to both the result and the counters, and
    /// it keeps the wide-row case competitive with the scalar kernel's
    /// per-row early exit.
    fn dominated_lanes(&self, cand: &[u32]) -> (bool, u64) {
        let dims = self.dims;
        let mut base = 0u64;
        for chunk in self.soa.chunks_exact(dims * LANES) {
            let mut le = [1u32; LANES];
            let mut lt = [0u32; LANES];
            for (col, &cd) in chunk.chunks_exact(LANES).zip(cand.iter()) {
                for l in 0..LANES {
                    le[l] &= (col[l] <= cd) as u32;
                    lt[l] |= (col[l] < cd) as u32;
                }
                if dims > 4 && le.iter().fold(0u32, |a, &x| a | x) == 0 {
                    break;
                }
            }
            let mut any = 0u32;
            for l in 0..LANES {
                any |= le[l] & lt[l];
            }
            if any != 0 {
                for l in 0..LANES {
                    if le[l] & lt[l] != 0 {
                        return (true, base + l as u64 + 1);
                    }
                }
            }
            base += LANES as u64;
        }
        (false, self.len() as u64)
    }

    /// Does any of the listed points strictly dominate `cand`? `ids` index
    /// into this block. Returns `(dominated, pairs_examined)`.
    #[inline]
    pub fn dominated_by(&self, ids: &[u32], cand: &[u32]) -> (bool, u64) {
        debug_assert_eq!(cand.len(), self.dims);
        match self.kernel {
            Kernel::Scalar => self.dominated_by_scalar(ids, cand),
            Kernel::Lanes => self.dominated_by_lanes(ids, cand),
        }
    }

    fn dominated_by_scalar(&self, ids: &[u32], cand: &[u32]) -> (bool, u64) {
        let mut examined = 0u64;
        for &id in ids {
            examined += 1;
            if row_dominates(self.row(id), cand) {
                return (true, examined);
            }
        }
        (false, examined)
    }

    /// Id-gather lane kernel: each group of [`LANES`] listed rows is
    /// transposed into a dimension-major stack scratch (one row slice per
    /// id), then compared with the same mask loop as the full-block scan;
    /// the sub-[`LANES`] tail runs scalar.
    fn dominated_by_lanes(&self, ids: &[u32], cand: &[u32]) -> (bool, u64) {
        let dims = self.dims;
        if dims > LANE_MAX_DIMS {
            return self.dominated_by_scalar(ids, cand);
        }
        let mut scratch = [0u32; LANES * LANE_MAX_DIMS];
        let mut examined = 0u64;
        let groups = ids.chunks_exact(LANES);
        let tail = groups.remainder();
        for group in groups {
            for (l, &id) in group.iter().enumerate() {
                let row = self.row(id);
                for d in 0..dims {
                    scratch[d * LANES + l] = row[d];
                }
            }
            let mut le = [1u32; LANES];
            let mut lt = [0u32; LANES];
            for (col, &cd) in scratch[..dims * LANES].chunks_exact(LANES).zip(cand.iter()) {
                for l in 0..LANES {
                    le[l] &= (col[l] <= cd) as u32;
                    lt[l] |= (col[l] < cd) as u32;
                }
                if dims > 4 && le.iter().fold(0u32, |a, &x| a | x) == 0 {
                    break;
                }
            }
            let mut any = 0u32;
            for l in 0..LANES {
                any |= le[l] & lt[l];
            }
            if any != 0 {
                for l in 0..LANES {
                    if le[l] & lt[l] != 0 {
                        return (true, examined + l as u64 + 1);
                    }
                }
            }
            examined += LANES as u64;
        }
        for &id in tail {
            examined += 1;
            if row_dominates(self.row(id), cand) {
                return (true, examined);
            }
        }
        (false, examined)
    }

    /// Corner pruning: is some point `<=` the MBB corner on every dimension
    /// *and* different from it? (The strict-corner rule that keeps exact
    /// duplicates of skyline points alive — see `bbs.rs`.) Scans all rows.
    ///
    /// Single fused pass: given `row <= corner` everywhere, `row != corner`
    /// holds exactly when `row < corner` somewhere — so the corner rule *is*
    /// strict dominance of the corner, and the old second equality walk
    /// over the row is gone.
    #[inline]
    pub fn corner_pruned(&self, corner: &[u32]) -> (bool, u64) {
        self.dominated(corner)
    }

    /// The strictness-precomputed variant for same-key groups: each entry
    /// is `(point index, strict_elsewhere)`, where `strict_elsewhere`
    /// records that the entry already beats the candidate strictly on some
    /// dimension *outside* this block (e.g. a partially ordered attribute
    /// shared group-wide). The entry then dominates iff its coordinates are
    /// `<=` the candidate everywhere and, when not strict elsewhere, differ
    /// from it somewhere — and "differs under `<=` everywhere" is "strictly
    /// smaller somewhere", so one fused `le`/`lt` pass decides each pair.
    #[inline]
    pub fn dominated_with_strictness(&self, entries: &[(u32, bool)], cand: &[u32]) -> (bool, u64) {
        debug_assert_eq!(cand.len(), self.dims);
        match self.kernel {
            Kernel::Scalar => self.dominated_with_strictness_scalar(entries, cand),
            Kernel::Lanes => self.dominated_with_strictness_lanes(entries, cand),
        }
    }

    fn dominated_with_strictness_scalar(
        &self,
        entries: &[(u32, bool)],
        cand: &[u32],
    ) -> (bool, u64) {
        let mut examined = 0u64;
        for &(id, strict) in entries {
            examined += 1;
            let mut le = true;
            let mut lt = false;
            for (&a, &b) in self.row(id).iter().zip(cand.iter()) {
                le &= a <= b;
                lt |= a < b;
            }
            if le && (strict || lt) {
                return (true, examined);
            }
        }
        (false, examined)
    }

    fn dominated_with_strictness_lanes(
        &self,
        entries: &[(u32, bool)],
        cand: &[u32],
    ) -> (bool, u64) {
        let dims = self.dims;
        if dims > LANE_MAX_DIMS {
            return self.dominated_with_strictness_scalar(entries, cand);
        }
        let mut scratch = [0u32; LANES * LANE_MAX_DIMS];
        let mut examined = 0u64;
        let groups = entries.chunks_exact(LANES);
        let tail = groups.remainder();
        for group in groups {
            let mut strict = [0u32; LANES];
            for (l, &(id, s)) in group.iter().enumerate() {
                strict[l] = s as u32;
                let row = self.row(id);
                for d in 0..dims {
                    scratch[d * LANES + l] = row[d];
                }
            }
            let mut le = [1u32; LANES];
            let mut lt = [0u32; LANES];
            for (col, &cd) in scratch[..dims * LANES].chunks_exact(LANES).zip(cand.iter()) {
                for l in 0..LANES {
                    le[l] &= (col[l] <= cd) as u32;
                    lt[l] |= (col[l] < cd) as u32;
                }
                if dims > 4 && le.iter().fold(0u32, |a, &x| a | x) == 0 {
                    break;
                }
            }
            let mut any = 0u32;
            for l in 0..LANES {
                any |= le[l] & (strict[l] | lt[l]);
            }
            if any != 0 {
                for l in 0..LANES {
                    if le[l] & (strict[l] | lt[l]) != 0 {
                        return (true, examined + l as u64 + 1);
                    }
                }
            }
            examined += LANES as u64;
        }
        for &(id, strict) in tail {
            examined += 1;
            let mut le = true;
            let mut lt = false;
            for (&a, &b) in self.row(id).iter().zip(cand.iter()) {
                le &= a <= b;
                lt |= a < b;
            }
            if le && (strict || lt) {
                return (true, examined);
            }
        }
        (false, examined)
    }
}

impl From<Vec<Vec<u32>>> for PointBlock {
    fn from(rows: Vec<Vec<u32>>) -> Self {
        PointBlock::from_rows(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::dominates;
    use proptest::prelude::*;

    #[test]
    fn layout_round_trips() {
        let mut b = PointBlock::new(2);
        b.push(&[1, 2]);
        b.push(&[3, 4]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.point(0), &[1, 2]);
        assert_eq!(b.point(1), &[3, 4]);
        assert_eq!(b.coord(1, 0), 3);
        assert_eq!(b.flat(), &[1, 2, 3, 4]);
        let again = PointBlock::from_flat(2, b.flat().to_vec());
        assert_eq!(again, b);
        assert_eq!(b.iter().count(), 2);
    }

    #[test]
    fn soa_mirror_tracks_every_mutation() {
        // Interleave pushes, retain and append across a chunk boundary and
        // check the mirror against a from-scratch rebuild each time.
        let dims = 3;
        let mut b = PointBlock::new(dims);
        let check = |b: &PointBlock| {
            let expect = PointBlock::from_flat(dims, b.flat().to_vec());
            assert_eq!(b.soa, expect.soa, "mirror out of sync: {:?}", b.flat());
            assert_eq!(b.soa.len(), b.len().div_ceil(LANES) * dims * LANES);
        };
        for i in 0..19u32 {
            b.push(&[i, 50 - i, i % 4]);
            check(&b);
        }
        let mut ids: Vec<u32> = (0..19).collect();
        b.retain_with_ids(&mut ids, |id, _| id % 3 != 0);
        check(&b);
        let mut other = PointBlock::from_rows(&[vec![9, 9, 9], vec![8, 8, 8]]);
        b.append(&mut other);
        check(&b);
        assert!(other.is_empty());
        check(&other);
        b.clear();
        check(&b);
    }

    #[test]
    fn kernels_agree_with_scalar_checks() {
        for kernel in [Kernel::Scalar, Kernel::Lanes] {
            let b =
                PointBlock::from_rows(&[vec![2, 2], vec![5, 1], vec![3, 3]]).with_kernel(kernel);
            // (3,3) is dominated by (2,2) — found after one examined pair.
            assert_eq!(b.dominated(&[3, 3]), (true, 1));
            // (1,1) is dominated by nobody; all three rows examined.
            assert_eq!(b.dominated(&[1, 1]), (false, 3));
            // Duplicates never dominate.
            assert!(!b.dominated(&[2, 2]).0);
            // id-restricted scan skips unlisted dominators.
            assert!(!b.dominated_by(&[1], &[3, 3]).0);
            assert_eq!(b.dominated_by(&[1, 0], &[3, 3]), (true, 2));
        }
    }

    #[test]
    fn corner_rule_spares_exact_duplicates() {
        for kernel in [Kernel::Scalar, Kernel::Lanes] {
            let b = PointBlock::from_rows(&[vec![2, 2]]).with_kernel(kernel);
            assert!(b.corner_pruned(&[3, 3]).0);
            assert!(!b.corner_pruned(&[2, 2]).0, "equal corner must survive");
            assert!(!b.corner_pruned(&[1, 4]).0);
        }
    }

    #[test]
    fn strictness_variant_matches_semantics() {
        for kernel in [Kernel::Scalar, Kernel::Lanes] {
            let b = PointBlock::from_rows(&[vec![2, 2], vec![4, 4]]).with_kernel(kernel);
            // Equal coordinates dominate only when strict elsewhere.
            assert!(!b.dominated_with_strictness(&[(0, false)], &[2, 2]).0);
            assert!(b.dominated_with_strictness(&[(0, true)], &[2, 2]).0);
            // Strictly better coordinates dominate either way.
            assert!(b.dominated_with_strictness(&[(0, false)], &[3, 3]).0);
            // Worse coordinates never do.
            assert!(!b.dominated_with_strictness(&[(1, true)], &[3, 3]).0);
        }
    }

    #[test]
    fn pad_lanes_never_dominate_a_max_candidate() {
        // A candidate at u32::MAX everywhere ties the tail pads on every
        // dimension; the pads must still not count as dominators (le
        // without lt), while a real row beats it.
        let mut b = PointBlock::new(2).with_kernel(Kernel::Lanes);
        b.push(&[u32::MAX, u32::MAX]);
        assert_eq!(b.dominated(&[u32::MAX, u32::MAX]), (false, 1));
        b.push(&[0, 0]);
        assert_eq!(b.dominated(&[u32::MAX, u32::MAX]), (true, 2));
    }

    #[test]
    fn epoch_expire_and_compact_keep_the_mirror_synced() {
        let mut b = PointBlock::new(2);
        for i in 0..11u32 {
            b.push(&[i, 20 - i]);
        }
        let g = b.generation();
        assert!(b.expire(3) && b.expire(8) && b.expire(10));
        assert!(!b.expire(3), "double expiry is a no-op");
        assert_eq!(b.generation(), g + 3);
        assert_eq!((b.len(), b.live_len()), (11, 8));
        assert!(b.is_live(0) && !b.is_live(8));
        // Kernels keep scanning physical rows until compaction: [11, 10]
        // is dominated only by the tombstoned row 10 = (10, 10).
        assert!(b.dominated(&[11, 10]).0);
        let survivors = b.compact();
        assert_eq!(survivors, vec![0, 1, 2, 4, 5, 6, 7, 9]);
        assert_eq!((b.len(), b.live_len()), (8, 8));
        // Compaction dropped the tombstoned rows from the scan.
        assert!(!b.dominated(&[11, 10]).0);
        // The mirror matches a from-scratch rebuild of the compacted data.
        let expect = PointBlock::from_flat(2, b.flat().to_vec());
        assert_eq!(b.soa, expect.soa);
        assert_eq!(b.point(3), &[4, 16], "old row 4 is new row 3");
    }

    #[test]
    fn retain_compacts_in_order() {
        let mut b = PointBlock::from_rows(&[vec![1, 1], vec![2, 2], vec![3, 3], vec![4, 4]]);
        let mut ids = vec![10, 20, 30, 40];
        b.retain_with_ids(&mut ids, |id, row| id != 20 && row[0] != 4);
        assert_eq!(ids, vec![10, 30]);
        assert_eq!(b.point(0), &[1, 1]);
        assert_eq!(b.point(1), &[3, 3]);
        assert_eq!(b.len(), 2);
    }

    proptest! {
        /// The batched kernel (both variants) agrees with the scalar
        /// `dominates` loop and never examines more pairs than the scalar
        /// early-exit scan.
        #[test]
        fn batched_equals_scalar_loop(
            rows in proptest::collection::vec(
                proptest::collection::vec(0u32..6, 3), 1..40),
            cand in proptest::collection::vec(0u32..6, 3),
        ) {
            let b = PointBlock::from_rows(&rows);
            let mut scalar = 0u64;
            let mut expect = false;
            for r in &rows {
                scalar += 1;
                if dominates(r, &cand) { expect = true; break; }
            }
            for kernel in [Kernel::Scalar, Kernel::Lanes] {
                let b = b.clone().with_kernel(kernel);
                let (got, examined) = b.dominated(&cand);
                prop_assert_eq!(got, expect);
                prop_assert_eq!(examined, scalar);
            }
        }

        /// Lane-chunked ≡ scalar ≡ oracle across every kernel, on ragged
        /// sizes (n % LANES ≠ 0 included by construction), duplicate rows
        /// and dims 1..=16 — results *and* exact examined-pair counts.
        #[test]
        fn lanes_equal_scalar_on_every_kernel(
            dims in 1usize..=16,
            n in 1usize..40,
            seed in 0u64..1024,
            dup in proptest::bool::ANY,
        ) {
            // Deterministic pseudo-random fill from the seed (tight value
            // range forces le/lt/equality collisions).
            let mut s = seed;
            let mut next = move || { s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407); (s >> 33) as u32 % 5 };
            let mut rows: Vec<Vec<u32>> = (0..n).map(|_| (0..dims).map(|_| next()).collect()).collect();
            if dup && n >= 2 {
                let half = n / 2;
                let copy = rows[0].clone();
                rows[half] = copy; // duplicate across a likely chunk split
            }
            let cand: Vec<u32> = if dup { rows[0].clone() } else { (0..dims).map(|_| next()).collect() };
            let scalar = PointBlock::from_rows(&rows).with_kernel(Kernel::Scalar);
            let lanes = scalar.clone().with_kernel(Kernel::Lanes);

            // dominated ≡ and oracle-checked.
            let expect_hit = rows.iter().any(|r| dominates(r, &cand));
            let (s_hit, s_ex) = scalar.dominated(&cand);
            prop_assert_eq!(s_hit, expect_hit);
            prop_assert_eq!(lanes.dominated(&cand), (s_hit, s_ex));

            // corner_pruned ≡ (and ≡ dominated by the fused identity).
            prop_assert_eq!(lanes.corner_pruned(&cand), scalar.corner_pruned(&cand));
            prop_assert_eq!(scalar.corner_pruned(&cand), (s_hit, s_ex));

            // dominated_by over a permuted id list.
            let mut ids: Vec<u32> = (0..n as u32).collect();
            ids.rotate_left(seed as usize % n);
            prop_assert_eq!(lanes.dominated_by(&ids, &cand), scalar.dominated_by(&ids, &cand));

            // dominated_with_strictness with mixed strict flags.
            let entries: Vec<(u32, bool)> =
                ids.iter().map(|&id| (id, id % 3 == 0)).collect();
            prop_assert_eq!(
                lanes.dominated_with_strictness(&entries, &cand),
                scalar.dominated_with_strictness(&entries, &cand)
            );
        }
    }
}

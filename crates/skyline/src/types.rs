/// Execution statistics shared by all skyline algorithms — the two
/// efficiency measures of §III-A: pairwise dominance checks and page IOs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Pairwise dominance (or containment) checks performed.
    pub dominance_checks: u64,
    /// Page IOs (node reads). Zero for purely in-memory algorithms.
    pub io_reads: u64,
    /// Invocations of a batched dominance kernel (each kernel call examines
    /// zero or more pairs, all counted in `dominance_checks`).
    pub dominance_batch_calls: u64,
    /// [`LANES`](crate::LANES)-wide chunk iterations the examined pairs
    /// amount to (`Σ ⌈examined/LANES⌉` per batch call). Derived from the
    /// pair counts alone, so it is identical across kernel variants.
    pub kernel_chunks: u64,
}

impl Stats {
    /// Sums two stats (used when an algorithm composes sub-runs).
    pub fn merge(self, other: Stats) -> Stats {
        Stats {
            dominance_checks: self.dominance_checks + other.dominance_checks,
            io_reads: self.io_reads + other.io_reads,
            dominance_batch_calls: self.dominance_batch_calls + other.dominance_batch_calls,
            kernel_chunks: self.kernel_chunks + other.kernel_chunks,
        }
    }

    /// Accounts one batched-kernel invocation that examined `examined`
    /// pairs.
    #[inline]
    pub fn batch(&mut self, examined: u64) {
        self.dominance_checks += examined;
        self.dominance_batch_calls += 1;
        self.kernel_chunks += examined.div_ceil(crate::LANES as u64);
    }
}

/// Strict Pareto dominance over totally ordered dimensions, smaller is
/// better: `a` dominates `b` iff `a <= b` everywhere and `a < b` somewhere.
#[inline]
pub fn dominates(a: &[u32], b: &[u32]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strict = false;
    for (x, y) in a.iter().zip(b.iter()) {
        if x > y {
            return false;
        }
        if x < y {
            strict = true;
        }
    }
    strict
}

/// `a <= b` on every dimension (dominates or coincides).
#[inline]
pub fn dominates_or_equal(a: &[u32], b: &[u32]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).all(|(x, y)| x <= y)
}

/// The monotone preference function used for presorting (SFS/SaLSa): the sum
/// of coordinates (the L1 distance to the ideal point). Any point can only
/// be dominated by points with a strictly smaller — or, for duplicates and
/// permutations, equal — sum, which is what gives sorted algorithms
/// *precedence*.
#[inline]
pub fn monotone_sum(p: &[u32]) -> u64 {
    p.iter().map(|&c| c as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_dominance() {
        assert!(dominates(&[1, 2], &[1, 3]));
        assert!(dominates(&[0, 0], &[5, 5]));
        assert!(!dominates(&[1, 2], &[1, 2]), "duplicates do not dominate");
        assert!(!dominates(&[1, 3], &[2, 2]), "incomparable");
        assert!(!dominates(&[2, 2], &[1, 3]));
    }

    #[test]
    fn weak_dominance() {
        assert!(dominates_or_equal(&[1, 2], &[1, 2]));
        assert!(dominates_or_equal(&[1, 2], &[1, 3]));
        assert!(!dominates_or_equal(&[2, 2], &[1, 3]));
    }

    #[test]
    fn sum_is_monotone_under_dominance() {
        // If a dominates b, sum(a) < sum(b) (strict because of the strict
        // coordinate).
        let a = [1u32, 2, 3];
        let b = [1u32, 2, 4];
        assert!(dominates(&a, &b));
        assert!(monotone_sum(&a) < monotone_sum(&b));
    }

    #[test]
    fn stats_merge() {
        let a = Stats {
            dominance_checks: 3,
            io_reads: 1,
            dominance_batch_calls: 2,
            kernel_chunks: 1,
        };
        let b = Stats {
            dominance_checks: 4,
            io_reads: 2,
            dominance_batch_calls: 1,
            kernel_chunks: 1,
        };
        assert_eq!(
            a.merge(b),
            Stats {
                dominance_checks: 7,
                io_reads: 3,
                dominance_batch_calls: 3,
                kernel_chunks: 2,
            }
        );
    }

    #[test]
    fn batch_accounts_pairs_calls_and_chunks() {
        let mut s = Stats::default();
        s.batch(5);
        s.batch(0);
        assert_eq!(s.dominance_checks, 5);
        assert_eq!(s.dominance_batch_calls, 2);
        assert_eq!(s.kernel_chunks, 1, "5 pairs fit one 8-lane chunk");
        s.batch(9);
        assert_eq!(s.kernel_chunks, 3, "9 pairs span two chunks");
    }
}

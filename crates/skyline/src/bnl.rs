use crate::store::{row_dominates, PointBlock};
use crate::types::Stats;

/// Block Nested Loops (Börzsönyi et al., §II-A) with a bounded window and
/// multi-pass overflow handling.
///
/// Each pass streams its input against a window of at most `window`
/// incomparable candidates; points that fit nowhere spill to an overflow
/// buffer that seeds the next pass. A window point is *confirmed* (output)
/// at the end of a pass iff it entered the window before the pass's first
/// spill — only then has it provably met every surviving point. Unconfirmed
/// survivors are re-examined in the next pass together with the overflow.
///
/// The window loop reads all coordinates out of the columnar
/// [`PointBlock`] — no per-point rows anywhere in the pass.
///
/// Returns skyline indices in confirmation order plus [`Stats`]. BNL is the
/// canonical *non-progressive* baseline: nothing can be emitted until a pass
/// completes, which the paper contrasts with precedence-based algorithms.
pub fn bnl(data: &PointBlock, window: usize) -> (Vec<u32>, Stats) {
    let mut cursor = BnlCursor::new(data, window);
    let result: Vec<u32> = cursor.by_ref().collect();
    (result, cursor.stats())
}

/// **Incremental BNL**: a pass-at-a-time pull cursor. BNL can confirm
/// nothing before a pass completes (the property the paper contrasts with
/// precedence-based algorithms), so the lazy granularity is the *pass*:
/// each pass runs only when its first confirmation is pulled, and its
/// output is then streamed point by point. Consumers that stop after `k`
/// results skip every later pass entirely.
pub struct BnlCursor<'a> {
    data: &'a PointBlock,
    window: usize,
    input: Vec<u32>,
    confirmed: std::collections::VecDeque<u32>,
    stats: Stats,
}

impl<'a> BnlCursor<'a> {
    /// Prepares a multi-pass run over `data` with the given window size.
    pub fn new(data: &'a PointBlock, window: usize) -> Self {
        assert!(window >= 1, "window must hold at least one point");
        BnlCursor {
            data,
            window,
            input: (0..data.len() as u32).collect(),
            confirmed: std::collections::VecDeque::new(),
            stats: Stats::default(),
        }
    }

    /// Checks spent so far (final totals once exhausted).
    pub fn stats(&self) -> Stats {
        self.stats
    }

    /// One full pass: confirms window points that met every survivor and
    /// carries the rest (plus the overflow) into the next pass's input.
    fn run_pass(&mut self) {
        let data = self.data;
        // (index, window-entry timestamp)
        let mut win: Vec<(u32, usize)> = Vec::with_capacity(self.window);
        let mut overflow: Vec<u32> = Vec::new();
        let mut first_spill: Option<usize> = None;
        for (pos, &cand) in self.input.iter().enumerate() {
            let p = data.point(cand as usize);
            let mut dominated = false;
            let mut k = 0;
            while k < win.len() {
                let (w, _) = win[k];
                let wp = data.point(w as usize);
                self.stats.dominance_checks += 1;
                if row_dominates(wp, p) {
                    dominated = true;
                    break;
                }
                self.stats.dominance_checks += 1;
                if row_dominates(p, wp) {
                    // Candidate evicts the window point.
                    win.swap_remove(k);
                    continue;
                }
                k += 1;
            }
            if dominated {
                continue;
            }
            if win.len() < self.window {
                win.push((cand, pos));
            } else {
                if first_spill.is_none() {
                    first_spill = Some(pos);
                }
                overflow.push(cand);
            }
        }
        let confirm_before = first_spill.unwrap_or(usize::MAX);
        let mut carried: Vec<u32> = Vec::new();
        for (w, ts) in win {
            if ts < confirm_before {
                self.confirmed.push_back(w);
            } else {
                carried.push(w);
            }
        }
        // Unconfirmed window points must still meet the overflow points.
        carried.extend(overflow);
        self.input = carried;
    }
}

impl Iterator for BnlCursor<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        while self.confirmed.is_empty() && !self.input.is_empty() {
            self.run_pass();
        }
        self.confirmed.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force;
    use proptest::prelude::*;

    fn sorted(mut v: Vec<u32>) -> Vec<u32> {
        v.sort_unstable();
        v
    }

    #[test]
    fn matches_oracle_on_small_input() {
        let data = PointBlock::from_rows(&[
            vec![1800, 0],
            vec![2000, 0],
            vec![1800, 0],
            vec![1200, 1],
            vec![1400, 1],
            vec![1000, 1],
            vec![1000, 1],
            vec![1800, 1],
            vec![500, 2],
            vec![1200, 2],
        ]);
        for window in [1, 2, 3, 100] {
            let (got, stats) = bnl(&data, window);
            assert_eq!(sorted(got), brute_force(&data), "window={window}");
            assert!(stats.dominance_checks > 0);
        }
    }

    #[test]
    fn tiny_window_forces_multiple_passes() {
        // 50 incomparable points with window 4: many overflow passes.
        let data = PointBlock::from_rows(&(0..50u32).map(|i| vec![i, 49 - i]).collect::<Vec<_>>());
        let (got, _) = bnl(&data, 4);
        assert_eq!(sorted(got), (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn duplicates_survive() {
        let data = PointBlock::from_rows(&[vec![3, 3], vec![3, 3], vec![3, 3]]);
        let (got, _) = bnl(&data, 2);
        assert_eq!(sorted(got), vec![0, 1, 2]);
    }

    #[test]
    fn empty_input() {
        let (got, stats) = bnl(&PointBlock::new(2), 8);
        assert!(got.is_empty());
        assert_eq!(stats, Stats::default());
    }

    proptest! {
        #[test]
        fn equals_brute_force(
            pts in proptest::collection::vec(
                proptest::collection::vec(0u32..16, 3), 0..60),
            window in 1usize..8,
        ) {
            let data = PointBlock::from_rows(&pts);
            let (got, _) = bnl(&data, window);
            prop_assert_eq!(sorted(got), brute_force(&data));
        }
    }
}

use crate::store::{row_dominates, PointBlock};

/// The `O(n²)` skyline oracle: returns the indices of all points not
/// dominated by any other point, in input order. Every other algorithm in
/// this workspace is tested against it.
pub fn brute_force(data: &PointBlock) -> Vec<u32> {
    (0..data.len())
        .filter(|&i| {
            let p = data.point(i);
            !(0..data.len()).any(|j| j != i && row_dominates(data.point(j), p))
        })
        .map(|i| i as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flight_example_to_dimensions_only() {
        // Fig. 1(b): skyline over (Price, Stops) alone is {p1, p3, p6, p7, p9}.
        let data = PointBlock::from_rows(&[
            vec![1800, 0], // p1
            vec![2000, 0], // p2
            vec![1800, 0], // p3
            vec![1200, 1], // p4
            vec![1400, 1], // p5
            vec![1000, 1], // p6
            vec![1000, 1], // p7
            vec![1800, 1], // p8
            vec![500, 2],  // p9
            vec![1200, 2], // p10
        ]);
        assert_eq!(brute_force(&data), vec![0, 2, 5, 6, 8]);
    }

    #[test]
    fn duplicates_all_survive() {
        let data = PointBlock::from_rows(&[vec![1, 1], vec![1, 1], vec![2, 2]]);
        assert_eq!(brute_force(&data), vec![0, 1]);
    }

    #[test]
    fn single_point_and_empty() {
        assert_eq!(brute_force(&PointBlock::new(2)), Vec::<u32>::new());
        assert_eq!(brute_force(&PointBlock::from_rows(&[vec![9, 9]])), vec![0]);
    }

    #[test]
    fn chain_keeps_only_minimum() {
        let data = PointBlock::from_rows(&(0..10u32).map(|i| vec![i, i]).collect::<Vec<_>>());
        assert_eq!(brute_force(&data), vec![0]);
    }

    #[test]
    fn anti_chain_keeps_everything() {
        let data = PointBlock::from_rows(&(0..10u32).map(|i| vec![i, 9 - i]).collect::<Vec<_>>());
        assert_eq!(brute_force(&data), (0..10).collect::<Vec<_>>());
    }
}

//! Classic skyline algorithms over **totally ordered** integer domains
//! (smaller is better in every dimension), reproducing the related-work
//! algorithms of §II-A that TSS builds on and is compared against:
//!
//! * [`brute_force`] — the `O(n²)` oracle every other algorithm is tested
//!   against,
//! * [`bnl`] — Block Nested Loops with a bounded window and multi-pass
//!   overflow handling (Börzsönyi et al.),
//! * [`sfs`] — Sort-Filter-Skyline: presort by a monotone function, then a
//!   single filtering pass with *precedence* (Chomicki et al.),
//! * [`salsa`] — Sort and Limit Skyline algorithm: SFS plus an early-stop
//!   condition (Bartolini et al.),
//! * [`bbs`] — Branch-and-Bound Skyline over an R-tree (Papadias et al.),
//!   the algorithm sTSS and dTSS instantiate,
//! * [`bitmap`] / [`index_skyline`] — Tan et al.'s two progressive
//!   techniques (bit-sliced dominance tests; min-coordinate lists with
//!   early termination).
//!
//! # Data layout
//!
//! Inputs are columnar: a [`PointBlock`] stores all coordinates in one flat
//! `Vec<u32>` with a fixed stride, and the window/presort loops test
//! candidates with the block's batched, branch-free dominance kernels
//! instead of per-point `Vec<u32>` rows. Build one with
//! [`PointBlock::from_flat`] (zero-copy over an existing row-major matrix)
//! or [`PointBlock::from_rows`]. Alongside the row-major matrix the block
//! maintains a dimension-major (structure-of-arrays) mirror in
//! [`LANES`]-wide chunks, which the lane-chunked kernel variant
//! ([`Kernel::Lanes`]) scans with autovectorizable `[u32; LANES]` mask
//! ops — byte-identical results and examined-pair counts to the scalar
//! oracle path (`TSS_KERNEL=scalar`).
//!
//! # Semantics
//!
//! `p` dominates `q` iff `p[d] <= q[d]` on every dimension and `p[d] < q[d]`
//! on at least one. Exact duplicates therefore do **not** dominate each
//! other: all copies belong to the skyline. Every algorithm here, including
//! BBS's MBB pruning rule, is exact under that convention (see
//! `bbs.rs` for the corner-equality argument).
//!
//! All algorithms report [`Stats`]: pairwise dominance checks and page IOs
//! (for BBS), the two efficiency measures of the paper's §III-A.
//!
//! # Incremental (pull-based) variants
//!
//! The algorithms with the *precedence* property also come as explicit-state
//! iterators — [`BbsCursor`], [`SfsCursor`], [`SalsaCursor`] — that confirm
//! one skyline point per `next()` call, plus [`BnlCursor`], which is lazy at
//! pass granularity (BNL cannot confirm mid-pass). Pulling a `k`-prefix and
//! stopping costs proportionally less work; the eager functions are thin
//! adapters over these cursors.

#![forbid(unsafe_code)]

mod bbs;
mod bitmap;
mod bnl;
mod brute;
mod index;
mod salsa;
mod sfs;
mod store;
mod types;

pub use bbs::{bbs, bbs_visit, BbsCursor};
pub use bitmap::bitmap;
pub use bnl::{bnl, BnlCursor};
pub use brute::brute_force;
pub use index::index_skyline;
pub use salsa::{salsa, SalsaCursor};
pub use sfs::{sfs, SfsCursor};
pub use store::{Kernel, PointBlock, LANES};
pub use types::{dominates, dominates_or_equal, monotone_sum, Stats};

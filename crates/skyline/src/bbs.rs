use crate::store::PointBlock;
use crate::types::Stats;
use rtree::{BestFirst, Popped, RTree};

/// Branch-and-Bound Skyline (Papadias et al., §II-A) over an [`RTree`]:
/// entries are popped from a heap in ascending L1 mindist to the origin;
/// nodes whose lower-left corner is dominated are pruned wholesale; data
/// points that survive the skyline-list check are emitted immediately
/// (optimal progressiveness via precedence).
///
/// Returns `(record ids in discovery order, stats)`. `stats.io_reads` counts
/// the R-tree node accesses of **this run** (the tree's counter is reset on
/// entry), which is how the paper reports BBS's IO optimality.
///
/// # Pruning and duplicates
///
/// An MBB with lower-left corner `c` is pruned iff some skyline point `s`
/// satisfies `s <= c` *and* `s != c`. Then for any point `p` inside the MBB,
/// `s <= c <= p` and `p = s` would force `c = s` — a contradiction — so `s`
/// strictly improves on `p` somewhere and every point in the subtree is
/// dominated. Requiring `s != c` keeps the rule exact even when the data
/// contains exact duplicates of skyline points.
pub fn bbs(tree: &RTree) -> (Vec<u32>, Stats) {
    let mut result = Vec::new();
    let stats = bbs_visit(tree, |record, _point| result.push(record));
    (result, stats)
}

/// BBS with a streaming callback: `emit(record, point)` fires the moment a
/// skyline point is confirmed, so callers can measure progressiveness or
/// feed downstream structures (dTSS does both).
pub fn bbs_visit(tree: &RTree, mut emit: impl FnMut(u32, &[u32])) -> Stats {
    let mut cursor = BbsCursor::new(tree);
    for (record, point) in cursor.by_ref() {
        emit(record, &point);
    }
    cursor.stats()
}

/// **Incremental BBS**: the best-first traversal as a pull-based iterator.
/// Each [`next`](Iterator::next) call resumes the heap walk until the next
/// confirmation, so consumers that stop after `k` results never expand the
/// nodes ranked behind their prefix — top-k skylines at a fraction of the
/// full run's page reads.
///
/// Yields `(record, point)` pairs in ascending-mindist confirmation order.
/// `stats()` is observable mid-stream; `io_reads` uses the tree's shared
/// counter (reset when the cursor is created), so drive one cursor at a
/// time per tree if the per-run IO numbers matter.
pub struct BbsCursor<'a> {
    tree: &'a RTree,
    bf: BestFirst<'a>,
    /// Confirmed skyline coordinates, columnar (the batched-kernel window).
    skyline_pts: PointBlock,
    stats: Stats,
}

impl<'a> BbsCursor<'a> {
    /// Starts a fresh traversal (resets the tree's IO counter).
    pub fn new(tree: &'a RTree) -> Self {
        Self::with_kernel(tree, crate::Kernel::default())
    }

    /// [`new`](Self::new) with an explicit dominance-kernel variant for the
    /// confirmed-skyline window (callers embedding BBS propagate their own
    /// store's kernel here so one run never mixes variants).
    pub fn with_kernel(tree: &'a RTree, kernel: crate::Kernel) -> Self {
        tree.reset_io();
        BbsCursor {
            tree,
            bf: tree.best_first(),
            skyline_pts: PointBlock::new(tree.dims()).with_kernel(kernel),
            stats: Stats::default(),
        }
    }

    /// Checks and IOs spent so far (final totals once exhausted).
    pub fn stats(&self) -> Stats {
        Stats {
            io_reads: self.tree.io_count(),
            ..self.stats
        }
    }
}

impl Iterator for BbsCursor<'_> {
    type Item = (u32, Vec<u32>);

    fn next(&mut self) -> Option<(u32, Vec<u32>)> {
        while let Some(popped) = self.bf.pop() {
            match popped {
                Popped::Node { id, mbb, .. } => {
                    let (pruned, examined) = self.skyline_pts.corner_pruned(mbb.lo());
                    self.stats.batch(examined);
                    if !pruned {
                        self.bf.expand(id);
                    }
                }
                Popped::Record { point, record, .. } => {
                    let (dominated, examined) = self.skyline_pts.dominated(point);
                    self.stats.batch(examined);
                    if !dominated {
                        // Precedence: no later entry can dominate `point`
                        // (any dominator has a strictly smaller mindist,
                        // except exact duplicates, which do not dominate) —
                        // confirm now.
                        self.skyline_pts.push(point);
                        return Some((record, point.to_vec()));
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force;
    use crate::types::monotone_sum;
    use proptest::prelude::*;

    fn tree_of(data: &PointBlock, cap: usize) -> RTree {
        let ids: Vec<u32> = (0..data.len() as u32).collect();
        RTree::bulk_load_flat(data.dims(), cap, data.flat(), &ids)
    }

    fn sorted(mut v: Vec<u32>) -> Vec<u32> {
        v.sort_unstable();
        v
    }

    #[test]
    fn matches_oracle_small() {
        let data = PointBlock::from_rows(&[
            vec![5, 1],
            vec![1, 5],
            vec![3, 3],
            vec![4, 4],
            vec![2, 4],
            vec![3, 3],
        ]);
        let (got, stats) = bbs(&tree_of(&data, 3));
        assert_eq!(sorted(got), brute_force(&data));
        assert!(stats.io_reads >= 1);
    }

    #[test]
    fn progressive_output_in_mindist_order() {
        let data = PointBlock::from_rows(
            &(0..64u32)
                .map(|i| vec![i % 8 * 3, (i / 8) * 3])
                .collect::<Vec<_>>(),
        );
        let (got, _) = bbs(&tree_of(&data, 4));
        let dists: Vec<u64> = got
            .iter()
            .map(|&i| monotone_sum(data.point(i as usize)))
            .collect();
        assert!(
            dists.windows(2).all(|w| w[0] <= w[1]),
            "emitted out of order: {dists:?}"
        );
    }

    #[test]
    fn duplicates_of_skyline_points_survive() {
        let data = PointBlock::from_rows(&[vec![2, 2], vec![2, 2], vec![5, 5], vec![1, 4]]);
        let (got, _) = bbs(&tree_of(&data, 2));
        assert_eq!(sorted(got), vec![0, 1, 3]);
    }

    #[test]
    fn io_optimality_prunes_dominated_subtrees() {
        // A tight cluster at the origin dominates a distant cloud; BBS must
        // touch far fewer pages than a full traversal.
        let mut rows = vec![vec![0u32, 0]];
        for i in 0..1000u32 {
            rows.push(vec![500 + i % 100, 500 + (i * 13) % 100]);
        }
        let data = PointBlock::from_rows(&rows);
        let t = tree_of(&data, 8);
        let (got, stats) = bbs(&t);
        assert_eq!(got, vec![0]);
        assert!(
            (stats.io_reads as usize) < t.node_count() / 4,
            "io {} vs {} nodes",
            stats.io_reads,
            t.node_count()
        );
    }

    #[test]
    fn empty_tree() {
        let t = RTree::new(2, 4);
        let (got, stats) = bbs(&t);
        assert!(got.is_empty());
        assert_eq!(stats.io_reads, 0);
    }

    #[test]
    fn cursor_prefix_matches_full_run_and_reads_fewer_pages() {
        // Convex staircase: every point is in the skyline (x up, y down)
        // and the L1 mindists differ, so confirmations spread across the
        // traversal and an early stop provably leaves pages unread.
        let data = PointBlock::from_rows(
            &(0..400u32)
                .map(|i| vec![i * i, (399 - i) * (399 - i)])
                .collect::<Vec<_>>(),
        );
        let t = tree_of(&data, 4);
        let (full, full_stats) = bbs(&t);
        assert!(full.len() > 4, "need a non-trivial skyline");
        let mut cursor = BbsCursor::new(&t);
        let prefix: Vec<u32> = cursor.by_ref().take(2).map(|(r, _)| r).collect();
        assert_eq!(prefix, full[..2], "pull order equals emission order");
        assert!(
            cursor.stats().io_reads < full_stats.io_reads,
            "a 2-prefix pull must not pay the full run's IO ({} vs {})",
            cursor.stats().io_reads,
            full_stats.io_reads
        );
        // Draining the rest completes the identical skyline.
        let rest: Vec<u32> = cursor.map(|(r, _)| r).collect();
        let mut all = prefix;
        all.extend(rest);
        assert_eq!(all, full);
    }

    proptest! {
        #[test]
        fn equals_brute_force(
            pts in proptest::collection::vec(
                proptest::collection::vec(0u32..20, 2), 1..100),
            cap in 2usize..8,
        ) {
            let data = PointBlock::from_rows(&pts);
            let (got, _) = bbs(&tree_of(&data, cap));
            prop_assert_eq!(sorted(got), brute_force(&data));
        }

        /// Three dimensions, with duplicates injected.
        #[test]
        fn equals_brute_force_3d_with_dups(
            pts in proptest::collection::vec(
                proptest::collection::vec(0u32..6, 3), 1..60),
        ) {
            let mut rows = pts.clone();
            rows.extend(pts.iter().take(5).cloned());
            let data = PointBlock::from_rows(&rows);
            let (got, _) = bbs(&tree_of(&data, 4));
            prop_assert_eq!(sorted(got), brute_force(&data));
        }
    }
}

use crate::store::PointBlock;
use crate::types::{monotone_sum, Stats};

/// SaLSa — *Sort and Limit Skyline algorithm* (Bartolini et al., §II-A):
/// SFS with a different sort key (`minC`, the minimum coordinate) and an
/// early-termination test that lets it stop before scanning all points.
///
/// Sorting by `minC` preserves precedence (if `p` dominates `q` then
/// `min(p) <= min(q)`; ties are broken by the coordinate sum, which is
/// strictly smaller for a dominator). The stop test maintains the skyline
/// point `p*` minimizing `max(p*)`: once the next candidate `q` satisfies
/// `min(q) > max(p*)`, `p*` is strictly smaller than `q` on every dimension,
/// and likewise for all later candidates — the scan can stop.
///
/// The filter scan runs the batched columnar kernel
/// [`PointBlock::dominated_by`] over the skyline ids.
///
/// (The original paper stops on `min(q) >= max(p*)` with a tie analysis; we
/// use the strict form, which is unconditionally safe under
/// duplicates-survive semantics at the cost of occasionally scanning a few
/// extra points.)
pub fn salsa(data: &PointBlock) -> (Vec<u32>, Stats) {
    let mut cursor = SalsaCursor::new(data);
    let skyline: Vec<u32> = cursor.by_ref().collect();
    (skyline, cursor.stats())
}

fn min_c(p: &[u32]) -> u32 {
    p.iter().copied().min().unwrap_or(0)
}

fn max_c(p: &[u32]) -> u32 {
    p.iter().copied().max().unwrap_or(0)
}

/// **Incremental SaLSa**: the limited scan as a pull-based iterator — SFS
/// semantics plus the `minC > max(p*)` early-stop test, which now also ends
/// the *stream* early: once it fires, the cursor is exhausted without
/// touching the remaining candidates.
pub struct SalsaCursor<'a> {
    data: &'a PointBlock,
    order: Vec<u32>,
    pos: usize,
    skyline: Vec<u32>,
    best_max: Option<u32>,
    stopped: bool,
    stats: Stats,
}

impl<'a> SalsaCursor<'a> {
    /// Presorts the input by `(minC, sum)` (precedence order).
    pub fn new(data: &'a PointBlock) -> Self {
        let mut order: Vec<u32> = (0..data.len() as u32).collect();
        order.sort_by_key(|&i| {
            let p = data.point(i as usize);
            (min_c(p), monotone_sum(p), i)
        });
        SalsaCursor {
            data,
            order,
            pos: 0,
            skyline: Vec::new(),
            best_max: None,
            stopped: false,
            stats: Stats::default(),
        }
    }

    /// Checks spent so far (final totals once exhausted).
    pub fn stats(&self) -> Stats {
        self.stats
    }
}

impl Iterator for SalsaCursor<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.stopped {
            return None;
        }
        while let Some(&cand) = self.order.get(self.pos) {
            self.pos += 1;
            let p = self.data.point(cand as usize);
            if let Some(stop) = self.best_max {
                if min_c(p) > stop {
                    // p* dominates this and every later candidate.
                    self.stopped = true;
                    return None;
                }
            }
            let (dominated, examined) = self.data.dominated_by(&self.skyline, p);
            self.stats.batch(examined);
            if !dominated {
                let m = max_c(p);
                self.best_max = Some(self.best_max.map_or(m, |b| b.min(m)));
                self.skyline.push(cand);
                return Some(cand);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{brute_force, sfs};
    use proptest::prelude::*;

    fn sorted(mut v: Vec<u32>) -> Vec<u32> {
        v.sort_unstable();
        v
    }

    #[test]
    fn matches_oracle() {
        let data = PointBlock::from_rows(&[
            vec![5, 1],
            vec![1, 5],
            vec![3, 3],
            vec![4, 4],
            vec![0, 9],
            vec![9, 0],
        ]);
        let (got, _) = salsa(&data);
        assert_eq!(sorted(got), brute_force(&data));
    }

    #[test]
    fn early_stop_saves_checks() {
        // One point near the origin dominates a large cloud far away: SaLSa
        // must stop long before scanning the cloud.
        let mut rows = vec![vec![1u32, 1]];
        for i in 0..500u32 {
            rows.push(vec![100 + i % 50, 100 + i % 37]);
        }
        let data = PointBlock::from_rows(&rows);
        let (got, stats) = salsa(&data);
        assert_eq!(got, vec![0]);
        // SFS would pay one check per point; SaLSa stops immediately.
        let (_, sfs_stats) = sfs(&data);
        assert!(stats.dominance_checks < sfs_stats.dominance_checks / 10);
    }

    #[test]
    fn duplicates_survive_the_stop_test() {
        // All-equal coordinates: min == max, so the strict stop test never
        // fires between duplicates and all copies are kept.
        let data = PointBlock::from_rows(&[vec![4, 4], vec![4, 4], vec![4, 4]]);
        let (got, _) = salsa(&data);
        assert_eq!(sorted(got), vec![0, 1, 2]);
    }

    #[test]
    fn empty_input() {
        assert_eq!(salsa(&PointBlock::new(2)).0, Vec::<u32>::new());
    }

    proptest! {
        #[test]
        fn equals_brute_force(
            pts in proptest::collection::vec(
                proptest::collection::vec(0u32..16, 3), 0..80),
        ) {
            let data = PointBlock::from_rows(&pts);
            let (got, _) = salsa(&data);
            prop_assert_eq!(sorted(got), brute_force(&data));
        }
    }
}

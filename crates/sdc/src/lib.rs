//! The **m-dominance baselines** the TSS paper evaluates against (§II-C):
//! Chan et al.'s stratified skyline algorithms for partially ordered
//! domains, reimplemented from the paper's description.
//!
//! Each PO value carries only its spanning-tree interval `[minpost, post]`,
//! so tuples embed into a totally ordered space of `|TO| + 2·|PO|`
//! dimensions. Dominance there — **m-dominance** — is *stronger* than real
//! dominance: every m-dominated point is truly dominated, but preferences
//! running through non-tree DAG edges are missed, so the m-skyline contains
//! *false hits* that must be eliminated by exact cross-examination.
//!
//! * [`Variant::BbsPlus`] — BBS over the transformed space, candidates
//!   cross-examined on insertion, everything reported only at termination
//!   (not progressive).
//! * [`Variant::Sdc`] — two strata: the *completely covered* points (where
//!   m-dominance is exact, so results stream out progressively) and the
//!   rest (reported at the end).
//! * [`Variant::SdcPlus`] — one stratum per *uncovered level*, each in its
//!   own R-tree, processed in increasing level with a global list of
//!   confirmed results and a per-stratum local list of candidates; results
//!   stream out at every stratum boundary.
//!
//! [`DynamicSdc`] is the paper's §VI-C adaptation to dynamic queries: each
//! query's partial order invalidates the intervals *and* the strata, so the
//! index is rebuilt per query — an external sort plus bulk loads, charged as
//! page IOs against the same cost model TSS uses.

#![forbid(unsafe_code)]

mod dynamic;
mod engine;
mod index;
mod mdominance;

pub use dynamic::DynamicSdc;
pub use engine::{SdcCursor, SdcRun};
pub use index::{SdcConfig, SdcIndex, Variant};
pub use mdominance::MdContext;

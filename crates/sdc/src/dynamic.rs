//! The dynamic-query adaptation of SDC+ described in §VI-C.
//!
//! A dynamic skyline query changes the partial orders, which invalidates
//! both the interval labels and the strata classification, so "SDC+ must
//! build all index structures from scratch": an external sort partitions
//! the tuples into strata, then the per-stratum R-trees are bulk loaded.
//! The paper charges this as at least two passes over the data set — an IO
//! overhead that, unlike query-time IOs, cannot be amortized with buffers.
//!
//! We charge: read + write for the sort pass, a read pass for bulk loading,
//! and a write per index page created, using the same [`PageConfig`] model
//! as everything else.

use crate::{SdcConfig, SdcIndex, SdcRun, Variant};
use poset::Dag;
use rtree::PageConfig;
use tss_core::{CoreError, Metrics, Table};

/// The dynamic SDC+ baseline: holds only the raw table; every query pays a
/// full rebuild.
#[derive(Debug)]
pub struct DynamicSdc {
    table: Table,
    cfg: SdcConfig,
}

impl DynamicSdc {
    /// Wraps the data set.
    pub fn new(table: Table, cfg: SdcConfig) -> Self {
        DynamicSdc { table, cfg }
    }

    /// The page model in use.
    pub fn page(&self) -> PageConfig {
        self.cfg.page
    }

    /// Evaluates a dynamic skyline query: rebuilds the SDC+ index for the
    /// supplied partial orders (charged as IOs), then runs it.
    pub fn query(&self, dags: &[Dag]) -> Result<SdcRun, CoreError> {
        // lint:allow(time-source): Metrics.cpu timing site — rebuild wall clock charged into the run's cpu
        let rebuild_start = std::time::Instant::now();
        let index = SdcIndex::build(
            self.table.clone(),
            dags.to_vec(),
            Variant::SdcPlus,
            self.cfg,
        )?;
        let record_dims = self.table.to_dims() + self.table.po_dims();
        let data_pages = self.cfg.page.data_pages(self.table.len(), record_dims);
        let rebuild = Metrics {
            // External sort: read + write the data; bulk load: read it back.
            io_reads: 2 * data_pages,
            io_writes: data_pages + index.index_pages(),
            cpu: rebuild_start.elapsed(),
            ..Default::default()
        };
        let mut run = index.run();
        run.metrics = run.metrics.merge(&rebuild);
        Ok(run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poset::PartialOrderBuilder;
    use tss_core::{brute_force_po_skyline, PoDomain};

    fn fig5_table() -> Table {
        let mut t = Table::new(2, 1);
        for (a1, a2, a3) in [
            (1, 2, 0),
            (3, 1, 0),
            (3, 4, 0),
            (4, 5, 0),
            (2, 2, 1),
            (1, 5, 1),
            (2, 5, 2),
            (3, 4, 2),
            (4, 4, 2),
            (5, 2, 2),
        ] {
            t.push(&[a1, a2], &[a3]);
        }
        t
    }

    fn order(prefs: &[(&str, &str)]) -> Dag {
        let mut b = PartialOrderBuilder::new();
        b.values(["a", "b", "c"]);
        for &(x, y) in prefs {
            b.prefer(x, y).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn matches_oracle_across_queries() {
        let dsdc = DynamicSdc::new(fig5_table(), SdcConfig::default());
        for prefs in [
            vec![("b", "c")],
            vec![("a", "b"), ("c", "b")],
            vec![],
            vec![("a", "b"), ("b", "c")],
        ] {
            let dag = order(&prefs);
            let run = dsdc.query(std::slice::from_ref(&dag)).unwrap();
            let mut got = run.skyline.clone();
            got.sort_unstable();
            let doms = vec![PoDomain::new(dag)];
            let mut expect = brute_force_po_skyline(&doms, &fig5_table());
            expect.sort_unstable();
            assert_eq!(got, expect, "{prefs:?}");
        }
    }

    #[test]
    fn rebuild_ios_are_charged() {
        let dsdc = DynamicSdc::new(fig5_table(), SdcConfig::default());
        let run = dsdc.query(&[order(&[("b", "c")])]).unwrap();
        // At least: sort read+write (1 page each) + load read + index pages.
        assert!(run.metrics.io_reads >= 2);
        assert!(run.metrics.io_writes >= 2);
    }

    #[test]
    fn undersized_query_domain_rejected() {
        // The data uses value ids up to 2; a 2-value order cannot cover it.
        let dsdc = DynamicSdc::new(fig5_table(), SdcConfig::default());
        let wrong = Dag::from_edges(2, &[]).unwrap();
        assert!(dsdc.query(&[wrong]).is_err());
    }
}

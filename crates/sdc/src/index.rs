use crate::engine::{run_strata, SdcCursor, SdcRun};
use crate::MdContext;
use poset::{Dag, SpanningStrategy};
use rtree::{PageConfig, RTree};
use tss_core::{CoreError, SkylineCursor, SkylineEngine, Table};

/// Which baseline algorithm to run (§II-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// One stratum, cross-examination on insertion, output at termination.
    BbsPlus,
    /// Two strata: completely covered (exact, progressive) vs. the rest.
    Sdc,
    /// One stratum per uncovered level, each in its own R-tree.
    SdcPlus,
}

/// Configuration shared by the SDC family.
#[derive(Debug, Clone, Copy)]
pub struct SdcConfig {
    /// Page model for node capacities.
    pub page: PageConfig,
    /// Explicit node capacity override.
    pub node_capacity: Option<usize>,
    /// Spanning-tree extraction strategy for the interval labels.
    pub spanning: SpanningStrategy,
    /// Optional LRU page buffer (pages *per stratum tree*); `None` matches
    /// the paper's no-buffer setting.
    pub buffer_pages: Option<usize>,
    /// Parallel candidate-screening mode: `0` (default) keeps the classic
    /// serial stratum engine; `>= 1` screens each same-mindist batch of
    /// heap entries against the global/local lists *frozen at batch
    /// start*, concurrently on up to that many worker threads.
    ///
    /// Sound because strict dominance in the transformed space implies a
    /// strictly smaller mindist, so entries of one batch can never m-prune
    /// or m-dominate each other; exact screens are reconciled against
    /// intra-batch survivors serially in batch order. Outcomes, emission
    /// order and metrics depend only on the batch partition — never on
    /// the worker count.
    pub eval_threads: usize,
}

impl Default for SdcConfig {
    fn default() -> Self {
        SdcConfig {
            page: PageConfig::default(),
            node_capacity: None,
            spanning: SpanningStrategy::Dfs,
            buffer_pages: None,
            eval_threads: 0,
        }
    }
}

/// One stratum: its records live in their own R-tree over the transformed
/// space; `exact` marks strata where m-dominance is exact (level 0).
#[derive(Debug)]
pub(crate) struct Stratum {
    pub tree: RTree,
    pub exact: bool,
}

/// A built SDC-family index, runnable any number of times.
#[derive(Debug)]
pub struct SdcIndex {
    pub(crate) table: Table,
    pub(crate) ctx: MdContext,
    pub(crate) strata: Vec<Stratum>,
    pub(crate) cfg: SdcConfig,
    variant: Variant,
}

impl SdcIndex {
    /// Transforms, stratifies and bulk-loads the table.
    pub fn build(
        table: Table,
        dags: Vec<Dag>,
        variant: Variant,
        cfg: SdcConfig,
    ) -> Result<Self, CoreError> {
        if dags.len() != table.po_dims() {
            return Err(CoreError::DomainCountMismatch {
                dags: dags.len(),
                po_dims: table.po_dims(),
            });
        }
        let sizes: Vec<u32> = dags.iter().map(|d| d.len() as u32).collect();
        table.check_domains(&sizes)?;
        let ctx = MdContext::new(&dags, table.to_dims(), cfg.spanning);
        let dims = ctx.transformed_dims();
        if dims == 0 {
            return Err(CoreError::NoDimensions);
        }
        let cap = cfg.node_capacity.unwrap_or_else(|| cfg.page.capacity(dims));

        // Partition records into strata per the variant.
        let stratum_of = |po: &[u32]| -> usize {
            match variant {
                Variant::BbsPlus => 0,
                Variant::Sdc => usize::from(!ctx.completely_covered(po)),
                Variant::SdcPlus => ctx.stratum(po) as usize,
            }
        };
        let n_strata = match variant {
            Variant::BbsPlus => 1,
            Variant::Sdc => 2,
            Variant::SdcPlus => ctx.max_stratum() as usize + 1,
        };
        // Columnar strata: one flat transformed-coordinate matrix plus a
        // record-id vector per stratum — no per-point rows on the way to
        // the bulk loader.
        let mut coords: Vec<Vec<u32>> = vec![Vec::new(); n_strata];
        let mut records: Vec<Vec<u32>> = vec![Vec::new(); n_strata];
        for i in 0..table.len() {
            let s = stratum_of(table.po_row(i));
            ctx.transform_into(table.to_row(i), table.po_row(i), &mut coords[s]);
            records[s].push(i as u32);
        }
        let strata = coords
            .into_iter()
            .zip(records)
            .enumerate()
            .filter(|(_, (_, recs))| !recs.is_empty())
            .map(|(level, (flat, recs))| {
                let mut tree = RTree::bulk_load_flat(dims, cap, &flat, &recs);
                if let Some(pages) = cfg.buffer_pages {
                    tree.enable_buffer(pages);
                }
                Stratum {
                    tree,
                    // m-dominance is exact among completely covered points;
                    // for BBS+ a "stratum 0" mixes levels, so it is never
                    // exact.
                    exact: level == 0 && variant != Variant::BbsPlus,
                }
            })
            .collect();
        Ok(SdcIndex {
            table,
            ctx,
            strata,
            cfg,
            variant,
        })
    }

    /// The algorithm variant.
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// Number of non-empty strata.
    pub fn strata_count(&self) -> usize {
        self.strata.len()
    }

    /// The input table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Total R-tree pages across strata (for the rebuild IO model).
    pub fn index_pages(&self) -> u64 {
        self.strata.iter().map(|s| s.tree.node_count() as u64).sum()
    }

    /// Runs the algorithm, collecting the skyline and metrics.
    pub fn run(&self) -> SdcRun {
        run_strata(self, &mut |_, _| {})
    }

    /// Runs with a streaming callback `(record, sample)` fired whenever a
    /// point is *confirmed* (immediately in exact strata; at stratum end
    /// otherwise) — the progressiveness semantics of Fig. 11.
    pub fn run_with(&self, emit: &mut dyn FnMut(u32, tss_core::ProgressSample)) -> SdcRun {
        run_strata(self, emit)
    }

    /// Opens a pull-based, stratum-at-a-time cursor (see [`SdcCursor`]):
    /// strata are processed lazily as the stream reaches them, so stopping
    /// after `k` results leaves the remaining strata's R-trees untouched.
    pub fn cursor(&self) -> SdcCursor<'_> {
        SdcCursor::new(self)
    }

    /// Budgeted run: confirms points until the skyline completes or the
    /// pair-check allowance runs out — an exhausted outcome is always a
    /// *sound confirmed prefix* of the exact emission order (see
    /// [`tss_core::BudgetedCursor`]).
    pub fn run_budgeted(&self, budget: tss_core::Budget) -> tss_core::BudgetOutcome {
        tss_core::BudgetedCursor::run(self.cursor(), budget)
    }
}

impl SkylineEngine for SdcIndex {
    fn name(&self) -> &str {
        match self.variant {
            Variant::BbsPlus => "BBS+",
            Variant::Sdc => "SDC",
            Variant::SdcPlus => "SDC+",
        }
    }

    fn open(&self) -> Box<dyn SkylineCursor + '_> {
        Box::new(self.cursor())
    }
}

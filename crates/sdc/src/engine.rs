//! The stratum-processing engine shared by BBS+, SDC and SDC+ (§II-C).
//!
//! Strata are processed in increasing uncovered level. Within a stratum, a
//! BBS traversal of its R-tree (transformed space) maintains:
//!
//! * the **global list** — confirmed actual-skyline points from earlier
//!   strata (later strata can never dominate them, by stratum
//!   monotonicity), and
//! * the **local list** — candidates of the current stratum, which may
//!   contain *false hits* (m-dominance misses non-tree preferences).
//!
//! MBBs are pruned when m-dominated by any global or local entry (sound:
//! m-dominance implies dominance, and being dominated by a false hit that
//! is itself dominated still implies dominance by transitivity). A popped
//! point is discarded if m-dominated; survivors are checked for *exact*
//! dominance against both lists, evict local entries they exactly dominate
//! (cross-examination), and join the local list. At stratum end the local
//! list holds genuine skyline points and is appended to the global list.
//!
//! In *exact* strata (uncovered level 0) m-dominance equals dominance, so
//! the cross-examination is skipped and points are emitted immediately —
//! which is why SDC/SDC+ are progressive on stratum 0 and "jump" at
//! stratum boundaries thereafter (Fig. 11).

use crate::index::SdcIndex;
use rtree::Popped;
use skyline::PointBlock;
use std::collections::VecDeque;
use std::time::Instant;
use tss_core::{Metrics, ProgressSample, SkylineCursor, SkylinePoint};

/// Result of one SDC-family run.
#[derive(Debug, Clone)]
pub struct SdcRun {
    /// Skyline record ids in confirmation order.
    pub skyline: Vec<u32>,
    /// Execution metrics.
    pub metrics: Metrics,
    /// Number of points confirmed per processed stratum.
    pub per_stratum: Vec<usize>,
    /// False hits eliminated by cross-examination.
    pub false_hits_removed: u64,
}

/// A columnar confirmed-or-candidate list: record ids plus their
/// transformed coordinates in one flat block (the global and local lists of
/// the stratum engine). m-pruning and m-screening run the block's batched
/// kernels; exact checks fetch original tuples from the store by id.
#[derive(Debug)]
struct EntryList {
    ids: Vec<u32>,
    tcoords: PointBlock,
}

impl EntryList {
    fn new(dims: usize, kernel: skyline::Kernel) -> Self {
        EntryList {
            ids: Vec::new(),
            tcoords: PointBlock::new(dims).with_kernel(kernel),
        }
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn push(&mut self, record: u32, tcoords: &[u32]) {
        self.ids.push(record);
        self.tcoords.push(tcoords);
    }

    fn append(&mut self, other: &mut EntryList) {
        self.ids.append(&mut other.ids);
        self.tcoords.append(&mut other.tcoords);
    }
}

pub(crate) fn run_strata(index: &SdcIndex, emit: &mut dyn FnMut(u32, ProgressSample)) -> SdcRun {
    let mut cursor = SdcCursor::new(index);
    let mut skyline = Vec::new();
    while let Some(p) = cursor.next() {
        skyline.push(p.record);
        emit(p.record, cursor.progress());
    }
    SdcRun {
        skyline,
        metrics: cursor.metrics(),
        per_stratum: cursor.per_stratum.clone(),
        false_hits_removed: cursor.false_hits_removed,
    }
}

/// Pull-based executor for the SDC family: a **stratum-at-a-time** cursor.
///
/// The engine's confirmation granularity is the stratum — exact strata
/// confirm point by point during their traversal, non-exact strata only at
/// their boundary (the Fig. 11 "jumps") — so the cursor materializes one
/// stratum's confirmations at a time and streams them out; later strata run
/// only when the stream reaches them. A consumer stopping after `k` results
/// therefore never opens the R-trees of the remaining strata.
///
/// Each buffered confirmation carries the [`ProgressSample`] captured at
/// the moment the engine confirmed it, so progressiveness timelines are
/// identical to the push-based run.
pub struct SdcCursor<'a> {
    index: &'a SdcIndex,
    start: Instant,
    m: Metrics,
    global: EntryList,
    stratum_ix: usize,
    /// Confirmations of the current stratum not yet pulled.
    buffer: VecDeque<(u32, ProgressSample)>,
    per_stratum: Vec<usize>,
    false_hits_removed: u64,
    last_sample: ProgressSample,
    finished: bool,
}

impl<'a> SdcCursor<'a> {
    pub(crate) fn new(index: &'a SdcIndex) -> Self {
        SdcCursor {
            index,
            // lint:allow(time-source): Metrics.cpu timing site — cursor wall clock
            start: Instant::now(),
            m: Metrics::default(),
            global: EntryList::new(index.ctx.transformed_dims(), index.table.kernel()),
            stratum_ix: 0,
            buffer: VecDeque::new(),
            per_stratum: Vec::new(),
            false_hits_removed: 0,
            last_sample: ProgressSample::default(),
            finished: false,
        }
    }

    /// Points confirmed per processed stratum so far.
    pub fn per_stratum(&self) -> &[usize] {
        &self.per_stratum
    }

    /// False hits eliminated by cross-examination so far.
    pub fn false_hits_removed(&self) -> u64 {
        self.false_hits_removed
    }

    /// Runs one stratum to completion, pushing its confirmations (with
    /// their moment-of-confirmation samples) into the buffer.
    fn run_stratum(&mut self) {
        if self.index.cfg.eval_threads >= 1 {
            return self.run_stratum_batched();
        }
        self.run_stratum_serial()
    }

    /// The parallel-screening stratum engine (see
    /// [`SdcConfig::eval_threads`](crate::SdcConfig::eval_threads)): pops
    /// are collected into same-mindist batches and screened against the
    /// global/local lists frozen at batch start, on scoped worker threads.
    /// Strict transformed-space dominance implies a strictly smaller
    /// mindist, so batch members can never m-prune or m-dominate each
    /// other; exact dominance *between* batch survivors (false-hit
    /// relationships only) is reconciled serially in batch order, so the
    /// emission sequence equals the serial engine's and every count is
    /// invariant to the worker count.
    fn run_stratum_batched(&mut self) {
        let index = self.index;
        let table = &index.table;
        let ctx = &index.ctx;
        let threads = index.cfg.eval_threads.max(1);
        let stratum = &index.strata[self.stratum_ix];
        self.stratum_ix += 1;

        let sample = |m: &Metrics, start: &Instant| ProgressSample {
            results: m.results,
            elapsed_cpu: start.elapsed(),
            io_reads: m.io_reads,
            dominance_checks: m.dominance_checks,
        };

        stratum.tree.reset_io();
        let mut local = EntryList::new(index.ctx.transformed_dims(), index.table.kernel());
        let mut bf = stratum.tree.best_first();
        // Record ids confirmed within the current batch's apply phase —
        // the only entries the frozen screens cannot have seen.
        let mut batch_added: Vec<u32> = Vec::new();
        while let Some(d0) = bf.peek_mindist() {
            let mut batch: Vec<Popped<'_>> = Vec::new();
            while bf.peek_mindist() == Some(d0) {
                batch.push(bf.pop().expect("peeked entry"));
                self.m.heap_pops += 1;
            }
            // Frozen screens, fanned out; verdict `true` = keep.
            let global = &self.global;
            let frozen_local = &local;
            let exact = stratum.exact;
            let verdicts = tss_core::parallel::map_slice(threads, &batch, |popped| {
                let mut lm = Metrics::default();
                let keep = match popped {
                    Popped::Node { mbb, .. } => {
                        let corner = mbb.lo();
                        let (hit_g, ex_g) = global.tcoords.corner_pruned(corner);
                        lm.batch(ex_g);
                        let pruned = hit_g || {
                            let (hit_l, ex_l) = frozen_local.tcoords.corner_pruned(corner);
                            lm.batch(ex_l);
                            hit_l
                        };
                        !pruned
                    }
                    Popped::Record { point, record, .. } => {
                        let (hit_g, ex_g) = global.tcoords.dominated(point);
                        lm.batch(ex_g);
                        let m_dominated = hit_g || {
                            let (hit_l, ex_l) = frozen_local.tcoords.dominated(point);
                            lm.batch(ex_l);
                            hit_l
                        };
                        if m_dominated {
                            false
                        } else if exact {
                            true
                        } else {
                            let (to_p, po_p) = (
                                table.to_row(*record as usize),
                                table.po_row(*record as usize),
                            );
                            let dominated =
                                global.ids.iter().chain(frozen_local.ids.iter()).any(|&r| {
                                    lm.dominance_checks += 1;
                                    ctx.exact_dominates(table.to(r), table.po(r), to_p, po_p)
                                });
                            !dominated
                        }
                    }
                };
                (keep, lm)
            });
            // Apply in batch (= serial pop) order.
            batch_added.clear();
            for (popped, (keep, lm)) in batch.iter().zip(&verdicts) {
                self.m = self.m.merge(lm);
                if !keep {
                    continue;
                }
                match popped {
                    Popped::Node { id, .. } => bf.expand(*id),
                    Popped::Record { point, record, .. } => {
                        let record = *record;
                        let (to_p, po_p) =
                            (table.to_row(record as usize), table.po_row(record as usize));
                        if !stratum.exact {
                            // Reconcile against intra-batch survivors the
                            // frozen screen could not see. (Checking ones
                            // later evicted is harmless: exact dominance
                            // is transitive, so their evictor screens the
                            // same candidates.)
                            let dominated = batch_added.iter().any(|&r| {
                                self.m.dominance_checks += 1;
                                ctx.exact_dominates(table.to(r), table.po(r), to_p, po_p)
                            });
                            if dominated {
                                continue;
                            }
                            let before = local.len();
                            local.tcoords.retain_with_ids(&mut local.ids, |r, _| {
                                self.m.dominance_checks += 1;
                                !ctx.exact_dominates(to_p, po_p, table.to(r), table.po(r))
                            });
                            self.false_hits_removed += (before - local.len()) as u64;
                        }
                        local.push(record, point);
                        batch_added.push(record);
                        if stratum.exact {
                            self.m.results += 1;
                            self.m.io_reads += stratum.tree.io_count();
                            stratum.tree.reset_io();
                            self.buffer
                                .push_back((record, sample(&self.m, &self.start)));
                        }
                    }
                }
            }
        }
        self.m.io_reads += stratum.tree.io_count();
        if !stratum.exact {
            for &r in &local.ids {
                self.m.results += 1;
                self.buffer.push_back((r, sample(&self.m, &self.start)));
            }
        }
        self.per_stratum.push(local.len());
        self.global.append(&mut local);
    }

    /// The classic single-threaded stratum engine.
    fn run_stratum_serial(&mut self) {
        let index = self.index;
        let table = &index.table;
        let ctx = &index.ctx;
        let stratum = &index.strata[self.stratum_ix];
        self.stratum_ix += 1;
        let m = &mut self.m;

        let sample = |m: &Metrics, start: &Instant| ProgressSample {
            results: m.results,
            elapsed_cpu: start.elapsed(),
            io_reads: m.io_reads,
            dominance_checks: m.dominance_checks,
        };

        stratum.tree.reset_io();
        let mut local = EntryList::new(index.ctx.transformed_dims(), index.table.kernel());
        let mut bf = stratum.tree.best_first();
        while let Some(popped) = bf.pop() {
            m.heap_pops += 1;
            match popped {
                Popped::Node { id, mbb, .. } => {
                    let corner = mbb.lo();
                    // m-prune against both lists, batched (strict-corner
                    // rule keeps exact duplicates of list entries alive).
                    let (hit_g, ex_g) = self.global.tcoords.corner_pruned(corner);
                    m.batch(ex_g);
                    let pruned = hit_g || {
                        let (hit_l, ex_l) = local.tcoords.corner_pruned(corner);
                        m.batch(ex_l);
                        hit_l
                    };
                    if !pruned {
                        bf.expand(id);
                    }
                }
                Popped::Record { point, record, .. } => {
                    // 1. m-dominance screen (cheap, sound): m-dominance is
                    // plain coordinate dominance in the transformed space,
                    // so the batched block kernel decides it directly.
                    let (hit_g, ex_g) = self.global.tcoords.dominated(point);
                    m.batch(ex_g);
                    let m_dominated = hit_g || {
                        let (hit_l, ex_l) = local.tcoords.dominated(point);
                        m.batch(ex_l);
                        hit_l
                    };
                    if m_dominated {
                        continue;
                    }
                    let (to_p, po_p) =
                        (table.to_row(record as usize), table.po_row(record as usize));
                    if !stratum.exact {
                        // 2. exact check against confirmed results.
                        let dominated_g = self.global.ids.iter().any(|&r| {
                            m.dominance_checks += 1;
                            ctx.exact_dominates(table.to(r), table.po(r), to_p, po_p)
                        });
                        if dominated_g {
                            continue;
                        }
                        // 3. exact check against local candidates.
                        let dominated_l = local.ids.iter().any(|&r| {
                            m.dominance_checks += 1;
                            ctx.exact_dominates(table.to(r), table.po(r), to_p, po_p)
                        });
                        if dominated_l {
                            continue;
                        }
                        // 4. cross-examination: evict local false hits that
                        // the new point exactly dominates.
                        let before = local.len();
                        local.tcoords.retain_with_ids(&mut local.ids, |r, _| {
                            m.dominance_checks += 1;
                            !ctx.exact_dominates(to_p, po_p, table.to(r), table.po(r))
                        });
                        self.false_hits_removed += (before - local.len()) as u64;
                    }
                    local.push(record, point);
                    if stratum.exact {
                        // Level-0 stratum: m-dominance is exact, the point
                        // is final — stream it out now.
                        m.results += 1;
                        m.io_reads += stratum.tree.io_count();
                        stratum.tree.reset_io();
                        self.buffer.push_back((record, sample(m, &self.start)));
                    }
                }
            }
        }
        m.io_reads += stratum.tree.io_count();
        if !stratum.exact {
            // Stratum boundary: local candidates are now genuine results.
            for &r in &local.ids {
                m.results += 1;
                self.buffer.push_back((r, sample(m, &self.start)));
            }
        }
        self.per_stratum.push(local.len());
        self.global.append(&mut local);
    }
}

impl SkylineCursor for SdcCursor<'_> {
    fn next(&mut self) -> Option<SkylinePoint> {
        while self.buffer.is_empty() && self.stratum_ix < self.index.strata.len() {
            self.run_stratum();
        }
        let Some((record, sample)) = self.buffer.pop_front() else {
            if !self.finished {
                self.m.cpu = self.start.elapsed();
                self.finished = true;
            }
            return None;
        };
        self.last_sample = sample;
        Some(SkylinePoint {
            record,
            to: self.index.table.to_row(record as usize).to_vec(),
            po: self.index.table.po_row(record as usize).to_vec(),
        })
    }

    fn metrics(&self) -> Metrics {
        let mut m = self.m;
        if !self.finished {
            m.cpu = self.start.elapsed();
        }
        m
    }

    fn progress(&self) -> ProgressSample {
        self.last_sample
    }
}

#[cfg(test)]
mod tests {
    use crate::{SdcConfig, SdcIndex, Variant};
    use poset::Dag;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tss_core::{brute_force_po_skyline, PoDomain, Table};

    fn fig3_table() -> Table {
        let mut t = Table::new(1, 1);
        for (a1, a2) in [
            (2u32, 2u32),
            (3, 3),
            (1, 7),
            (8, 0),
            (6, 4),
            (7, 2),
            (9, 1),
            (4, 8),
            (2, 5),
            (3, 6),
            (5, 6),
            (7, 5),
            (9, 7),
        ] {
            t.push(&[a1], &[a2]);
        }
        t
    }

    fn oracle(t: &Table, dag: &Dag) -> Vec<u32> {
        let doms = vec![PoDomain::new(dag.clone())];
        let mut r = brute_force_po_skyline(&doms, t);
        r.sort_unstable();
        r
    }

    #[test]
    fn all_variants_match_oracle_on_fig3() {
        let dag = Dag::paper_example();
        let expect = oracle(&fig3_table(), &dag);
        assert_eq!(expect, vec![0, 1, 2, 3, 4]);
        for variant in [Variant::BbsPlus, Variant::Sdc, Variant::SdcPlus] {
            let idx = SdcIndex::build(
                fig3_table(),
                vec![dag.clone()],
                variant,
                SdcConfig::default(),
            )
            .unwrap();
            let run = idx.run();
            let mut got = run.skyline.clone();
            got.sort_unstable();
            assert_eq!(got, expect, "{variant:?}");
        }
    }

    #[test]
    fn sdc_plus_builds_multiple_strata() {
        let dag = Dag::paper_example();
        let idx = SdcIndex::build(
            fig3_table(),
            vec![dag.clone()],
            Variant::SdcPlus,
            SdcConfig::default(),
        )
        .unwrap();
        // Paper domain has uncovered levels 0, 1, 2 (all populated by fig3).
        assert_eq!(idx.strata_count(), 3);
        let sdc = SdcIndex::build(
            fig3_table(),
            vec![dag.clone()],
            Variant::Sdc,
            SdcConfig::default(),
        )
        .unwrap();
        assert_eq!(sdc.strata_count(), 2);
        let bbs = SdcIndex::build(
            fig3_table(),
            vec![dag],
            Variant::BbsPlus,
            SdcConfig::default(),
        )
        .unwrap();
        assert_eq!(bbs.strata_count(), 1);
    }

    #[test]
    fn false_hits_are_detected_and_removed() {
        // f really dominates h via a non-tree edge; give h a point that only
        // exact checking can kill, in the same stratum.
        let dag = Dag::paper_example();
        let f = dag.id_of("f").unwrap().0;
        let h = dag.id_of("h").unwrap().0;
        let mut t = Table::new(1, 1);
        t.push(&[5], &[h]); // false hit candidate (h is level >= 1)
        t.push(&[5], &[f]); // the real dominator (f is level >= 1 too)
        let idx = SdcIndex::build(
            t.clone(),
            vec![dag.clone()],
            Variant::SdcPlus,
            SdcConfig::default(),
        )
        .unwrap();
        let run = idx.run();
        let mut got = run.skyline.clone();
        got.sort_unstable();
        assert_eq!(got, oracle(&t, &dag));
        assert_eq!(got, vec![1]);
        // The h-point must have entered and left the local list (a false
        // hit) or been exactly screened, depending on pop order.
        assert!(run.false_hits_removed <= 1);
    }

    #[test]
    fn cursor_matches_push_run_and_stops_lazily() {
        use tss_core::SkylineCursor;
        let dag = Dag::paper_example();
        let idx = SdcIndex::build(
            fig3_table(),
            vec![dag],
            Variant::SdcPlus,
            SdcConfig::default(),
        )
        .unwrap();
        let full = idx.run();
        // Pull-collect equals the push-based confirmation order.
        let mut c = idx.cursor();
        let mut got = Vec::new();
        while let Some(p) = c.next() {
            got.push(p.record);
        }
        assert_eq!(got, full.skyline);
        assert_eq!(c.metrics().results, full.metrics.results);
        assert_eq!(c.per_stratum(), full.per_stratum.as_slice());
        // A 1-prefix pull only materializes the first stratum.
        let mut c = idx.cursor();
        assert!(c.next().is_some());
        assert!(
            c.per_stratum().len() <= 1,
            "later strata must not have run: {:?}",
            c.per_stratum()
        );
    }

    #[test]
    fn progressiveness_shape() {
        // SDC+ confirms level-0 points one by one and the rest in stratum
        // bursts; totals must match.
        let dag = Dag::paper_example();
        let idx = SdcIndex::build(
            fig3_table(),
            vec![dag],
            Variant::SdcPlus,
            SdcConfig::default(),
        )
        .unwrap();
        let mut seen = Vec::new();
        let run = idx.run_with(&mut |rec, s| {
            seen.push((rec, s.results));
        });
        assert_eq!(seen.len(), run.skyline.len());
        // results counter strictly increases.
        for w in seen.windows(2) {
            assert!(w[0].1 < w[1].1);
        }
    }

    #[test]
    fn parallel_screening_matches_serial_exactly() {
        // The batched engine must reproduce the serial confirmation
        // sequence, per-stratum counts and false-hit evictions, with
        // metrics invariant to the worker count.
        let dag = Dag::paper_example();
        let mut t = fig3_table();
        t.push(&[2], &[2]); // duplicate of p1
        t.push(&[5], &[7]); // h-point: false-hit fodder
        t.push(&[5], &[5]); // f-point that exactly dominates it
        for variant in [Variant::BbsPlus, Variant::Sdc, Variant::SdcPlus] {
            let serial =
                SdcIndex::build(t.clone(), vec![dag.clone()], variant, SdcConfig::default())
                    .unwrap()
                    .run();
            let mut reference: Option<tss_core::Metrics> = None;
            for threads in [1usize, 2, 4] {
                let cfg = SdcConfig {
                    eval_threads: threads,
                    ..Default::default()
                };
                let idx = SdcIndex::build(t.clone(), vec![dag.clone()], variant, cfg).unwrap();
                let run = idx.run();
                assert_eq!(
                    run.skyline, serial.skyline,
                    "confirmation order: {variant:?} threads={threads}"
                );
                assert_eq!(run.per_stratum, serial.per_stratum);
                assert_eq!(run.false_hits_removed, serial.false_hits_removed);
                assert_eq!(run.metrics.io_reads, serial.metrics.io_reads);
                assert_eq!(run.metrics.heap_pops, serial.metrics.heap_pops);
                assert_eq!(run.metrics.results, serial.metrics.results);
                match &reference {
                    None => reference = Some(run.metrics),
                    Some(m) => {
                        assert_eq!(
                            run.metrics.dominance_checks, m.dominance_checks,
                            "thread-count-invariant checks: {variant:?} threads={threads}"
                        );
                        assert_eq!(run.metrics.dominance_batch_calls, m.dominance_batch_calls);
                    }
                }
            }
        }
    }

    fn random_table(n: usize, seed: u64, v: u32) -> Table {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Table::new(2, 1);
        for _ in 0..n {
            t.push(
                &[rng.gen_range(0..15), rng.gen_range(0..15)],
                &[rng.gen_range(0..v)],
            );
        }
        t
    }

    #[test]
    fn variants_match_oracle_on_lattice_domains() {
        let dag = poset::generator::subset_lattice(poset::generator::LatticeParams {
            height: 4,
            density: 0.7,
            seed: 2,
            mode: poset::generator::DensityMode::Literal,
        })
        .unwrap();
        for seed in 0..3 {
            let t = random_table(300, seed, dag.len() as u32);
            let expect = oracle(&t, &dag);
            for variant in [Variant::BbsPlus, Variant::Sdc, Variant::SdcPlus] {
                let idx =
                    SdcIndex::build(t.clone(), vec![dag.clone()], variant, SdcConfig::default())
                        .unwrap();
                let mut got = idx.run().skyline;
                got.sort_unstable();
                assert_eq!(got, expect, "{variant:?} seed={seed}");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn equals_oracle(
            rows in proptest::collection::vec((0u32..10, 0u32..10, 0u32..9), 1..50),
            variant_ix in 0usize..3,
            threads in 0usize..4,
        ) {
            let mut t = Table::new(2, 1);
            for &(a, b, v) in &rows {
                t.push(&[a, b], &[v]);
            }
            let dag = Dag::paper_example();
            let expect = oracle(&t, &dag);
            let variant = [Variant::BbsPlus, Variant::Sdc, Variant::SdcPlus][variant_ix];
            let cfg = SdcConfig { eval_threads: threads, ..Default::default() };
            let idx = SdcIndex::build(t, vec![dag], variant, cfg).unwrap();
            let mut got = idx.run().skyline;
            got.sort_unstable();
            prop_assert_eq!(got, expect);
        }
    }
}

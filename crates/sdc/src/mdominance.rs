use poset::{Dag, MLabeling, Reachability, SpanningStrategy, SpanningTree, ValueId};
use tss_core::Table;

/// Per-domain machinery for the m-dominance baselines: the single-interval
/// labeling (with uncovered levels) plus the exact reachability oracle used
/// for false-hit elimination.
#[derive(Debug)]
pub struct MdContext {
    mlabels: Vec<MLabeling>,
    reaches: Vec<Reachability>,
    to_dims: usize,
}

impl MdContext {
    /// Builds labelings for every PO domain with the given spanning
    /// strategy.
    pub fn new(dags: &[Dag], to_dims: usize, strategy: SpanningStrategy) -> Self {
        let mlabels = dags
            .iter()
            .map(|d| MLabeling::build(d, SpanningTree::build(d, strategy)))
            .collect();
        let reaches = dags.iter().map(Reachability::build).collect();
        MdContext {
            mlabels,
            reaches,
            to_dims,
        }
    }

    /// Number of PO dimensions.
    #[inline]
    pub fn po_dims(&self) -> usize {
        self.mlabels.len()
    }

    /// Number of TO dimensions.
    #[inline]
    pub fn to_dims(&self) -> usize {
        self.to_dims
    }

    /// The m-labeling of PO dimension `d`.
    #[inline]
    pub fn mlabel(&self, d: usize) -> &MLabeling {
        &self.mlabels[d]
    }

    /// Dimensionality of the transformed space: `|TO| + 2·|PO|`.
    #[inline]
    pub fn transformed_dims(&self) -> usize {
        self.to_dims + 2 * self.mlabels.len()
    }

    /// Maps a tuple into the transformed space: TO coordinates, then per PO
    /// dimension `(minpost, |V| - post)`. The post axis is flipped so that
    /// *smaller is better* on every transformed dimension, which turns
    /// m-dominance into plain coordinate dominance (and lets the standard
    /// BBS machinery run unchanged).
    pub fn transform(&self, to: &[u32], po: &[u32]) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.transformed_dims());
        self.transform_into(to, po, &mut out);
        out
    }

    /// Appends a tuple's transformed coordinates to `out` — the columnar
    /// form of [`transform`](Self::transform), used to materialize whole
    /// strata as flat matrices without per-point rows.
    pub fn transform_into(&self, to: &[u32], po: &[u32], out: &mut Vec<u32>) {
        debug_assert_eq!(to.len(), self.to_dims);
        debug_assert_eq!(po.len(), self.mlabels.len());
        out.extend_from_slice(to);
        for (d, &v) in po.iter().enumerate() {
            let ml = &self.mlabels[d];
            let iv = ml.interval(ValueId(v));
            out.push(iv.lo);
            out.push(ml.len() as u32 - iv.hi);
        }
    }

    /// m-dominance in the transformed space: strict Pareto dominance of the
    /// transformed coordinates. Sound (implies real dominance), incomplete.
    pub fn m_dominates(&self, ta: &[u32], tb: &[u32]) -> bool {
        skyline::dominates(ta, tb)
    }

    /// Exact (ground truth) dominance on the original tuples, via the
    /// reachability closure — what the cross-examination steps use.
    pub fn exact_dominates(&self, to_a: &[u32], po_a: &[u32], to_b: &[u32], po_b: &[u32]) -> bool {
        let mut strict = false;
        for (x, y) in to_a.iter().zip(to_b.iter()) {
            if x > y {
                return false;
            }
            if x < y {
                strict = true;
            }
        }
        for (d, r) in self.reaches.iter().enumerate() {
            let (x, y) = (po_a[d], po_b[d]);
            if x == y {
                continue;
            }
            if r.preferred(ValueId(x), ValueId(y)) {
                strict = true;
            } else {
                return false;
            }
        }
        strict
    }

    /// The stratum of a tuple: the maximum uncovered level over its PO
    /// values. Monotone under dominance (a dominator's stratum is never
    /// higher), which is what lets the strata be processed in order.
    pub fn stratum(&self, po: &[u32]) -> u32 {
        po.iter()
            .enumerate()
            .map(|(d, &v)| self.mlabels[d].uncovered_level(ValueId(v)))
            .max()
            .unwrap_or(0)
    }

    /// Largest possible stratum for these domains.
    pub fn max_stratum(&self) -> u32 {
        self.mlabels
            .iter()
            .map(|ml| ml.max_uncovered_level())
            .max()
            .unwrap_or(0)
    }

    /// True iff the tuple is completely covered (stratum 0), where
    /// m-dominance is exact.
    pub fn completely_covered(&self, po: &[u32]) -> bool {
        self.stratum(po) == 0
    }

    /// Transformed coordinates for a whole table as one flat row-major
    /// matrix (record id = row index).
    pub fn transform_table_flat(&self, table: &Table) -> Vec<u32> {
        let mut out = Vec::with_capacity(table.len() * self.transformed_dims());
        for i in 0..table.len() {
            self.transform_into(table.to_row(i), table.po_row(i), &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poset::Dag;
    use proptest::prelude::*;

    fn ctx() -> (Dag, MdContext) {
        let dag = Dag::paper_example();
        (
            dag.clone(),
            MdContext::new(&[dag], 1, SpanningStrategy::Dfs),
        )
    }

    #[test]
    fn transform_flips_post_axis() {
        let (dag, c) = ctx();
        assert_eq!(c.transformed_dims(), 3);
        // Root a has interval [1, 9] under any spanning tree of this DAG.
        let a = dag.id_of("a").unwrap().0;
        let t = c.transform(&[7], &[a]);
        assert_eq!(t, vec![7, 1, 0]); // minpost=1, 9-post(a)=0 — the best corner
    }

    #[test]
    fn m_dominance_is_sound_but_incomplete() {
        let (dag, c) = ctx();
        let id = |s: &str| dag.id_of(s).unwrap().0;
        // a tree-dominates i: captured.
        let ta = c.transform(&[1], &[id("a")]);
        let ti = c.transform(&[1], &[id("i")]);
        assert!(c.m_dominates(&ta, &ti));
        assert!(c.exact_dominates(&[1], &[id("a")], &[1], &[id("i")]));
        // f really dominates h only via the non-tree edge: m misses it.
        let tf = c.transform(&[1], &[id("f")]);
        let th = c.transform(&[1], &[id("h")]);
        assert!(c.exact_dominates(&[1], &[id("f")], &[1], &[id("h")]));
        assert!(!c.m_dominates(&tf, &th), "the false-hit source");
    }

    #[test]
    fn strata_follow_uncovered_levels() {
        let (dag, c) = ctx();
        let id = |s: &str| dag.id_of(s).unwrap().0;
        assert_eq!(c.stratum(&[id("a")]), 0);
        assert!(c.completely_covered(&[id("b")]));
        assert!(c.stratum(&[id("h")]) >= 1);
        assert!(c.max_stratum() >= 1);
    }

    #[test]
    fn multi_dim_stratum_is_max() {
        let dag = Dag::paper_example();
        let c = MdContext::new(&[dag.clone(), dag.clone()], 0, SpanningStrategy::Dfs);
        let h = dag.id_of("h").unwrap().0;
        let a = dag.id_of("a").unwrap().0;
        assert_eq!(c.stratum(&[a, a]), 0);
        assert_eq!(c.stratum(&[a, h]), c.stratum(&[h, a]));
        assert_eq!(c.stratum(&[a, h]), c.mlabel(1).uncovered_level(ValueId(h)));
    }

    proptest! {
        /// m-dominance implies exact dominance for arbitrary tuples.
        #[test]
        fn m_implies_exact(
            to_a in proptest::collection::vec(0u32..6, 2),
            to_b in proptest::collection::vec(0u32..6, 2),
            pa in 0u32..9, pb in 0u32..9,
        ) {
            let dag = Dag::paper_example();
            let c = MdContext::new(&[dag], 2, SpanningStrategy::Dfs);
            let ta = c.transform(&to_a, &[pa]);
            let tb = c.transform(&to_b, &[pb]);
            if c.m_dominates(&ta, &tb) {
                prop_assert!(c.exact_dominates(&to_a, &[pa], &to_b, &[pb]));
            }
        }

        /// Stratum monotonicity under exact dominance (the SDC+ invariant).
        #[test]
        fn stratum_monotone(
            pa in 0u32..9, pb in 0u32..9,
        ) {
            let dag = Dag::paper_example();
            let c = MdContext::new(&[dag], 1, SpanningStrategy::Dfs);
            if c.exact_dominates(&[0], &[pa], &[1], &[pb]) {
                prop_assert!(c.stratum(&[pa]) <= c.stratum(&[pb]));
            }
        }
    }
}

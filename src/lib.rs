//! # tss — Topologically Sorted Skylines for Partially Ordered Domains
//!
//! Facade crate for the ICDE 2009 reproduction. Re-exports the public API of
//! every workspace crate so applications can depend on `tss` alone:
//!
//! * [`poset`] — partially ordered domains: DAGs, topological sorts,
//!   spanning-tree interval labelings (exact TSS labels and the
//!   single-interval m-labels), dyadic range indexes, DAG generators.
//! * [`rtree`] — the R-tree substrate with STR bulk loading, best-first
//!   traversal, Boolean range queries and IO accounting.
//! * [`skyline`] — classic skyline algorithms over totally ordered domains
//!   (brute force, BNL, SFS, SaLSa, BBS).
//! * [`core`] (crate `tss_core`) — the paper's contribution: t-dominance,
//!   the progressive **sTSS** algorithm for static skylines and **dTSS** for
//!   dynamic (query-defined) partial orders.
//! * [`sdc`] — the baselines: m-dominance and the BBS+/SDC/SDC+ family.
//! * [`datagen`] — synthetic workloads (independent / correlated /
//!   anti-correlated) with the paper's parameter grid.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

#![forbid(unsafe_code)]

pub use datagen;
pub use poset;
pub use rtree;
pub use sdc;
pub use skyline;
pub use tss_core as core;

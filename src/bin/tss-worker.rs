//! Hidden worker entry point for [`tss_core::SubprocessExecutor`].
//!
//! Supervisors re-exec this binary and speak the length-prefixed,
//! checksummed frame protocol of `tss_core::ipc::protocol` over
//! stdin/stdout. It serves the builtin task codecs (local skyline,
//! candidate screening) until the supervisor closes its end, then exits
//! cleanly. Humans never run it directly; integration tests locate it
//! via `env!("CARGO_BIN_EXE_tss-worker")`.

#![forbid(unsafe_code)]

fn main() {
    if let Err(e) = tss::core::ipc::serve_builtin() {
        eprintln!("tss-worker: {e}");
        // lint:allow(process): the worker entry point is the one place the
        // facade may talk to the process API; a nonzero exit tells the
        // supervisor the stream died rather than completed.
        std::process::exit(1);
    }
}
